//! Persistent trace artifacts: a versioned, length-prefixed binary
//! serialization of [`NetworkTrace`]s keyed by [`TraceKey`].
//!
//! Trace compilation dominates harness cost, and an in-memory cache
//! dies with the process — every fleet run and multi-seed sweep pays
//! the full cold start again. This module makes compiled traces durable:
//! [`encode`] turns a `(key, trace)` pair into a self-validating byte
//! stream, [`decode`] rebuilds it with **every read bounds-checked** and
//! every failure a typed [`ArtifactError`] (no panic is reachable from
//! malformed bytes), and [`save`]/[`load`] move artifacts through a
//! directory with atomic write-rename so concurrent processes sharing
//! the directory never observe a half-written file.
//!
//! # Wire format (version 1, little-endian)
//!
//! ```text
//! magic    [u8; 8]  b"PACCTRC1"
//! version  u32      FORMAT_VERSION (readers reject unknown versions)
//! checksum u64      FNV-1a over every byte after this field
//! body:
//!   key         str network, u64 seed, u64 scale_ppm
//!   fingerprint u64 NetworkTrace::fingerprint() of the payload
//!   trace       str network, str input_desc, u32 n_layers, layers…
//! layer:
//!   str name, u8 compute, u64 n_in/n_out/in_ch/out_ch,
//!   opt map-table, u32 n_mapping_ops + ops, u8 aggregation,
//!   opt u64 pool_group, u8 fusable
//! map-table:
//!   u32 n_weights, u64 offsets[n_weights+1], u32 inputs[len],
//!   u32 outputs[len]            (len = offsets[n_weights])
//! str:     u32 byte length + UTF-8 bytes
//! opt T:   u8 0|1 + T
//! ```
//!
//! Validation on load is layered: the checksum rejects any bit flip or
//! truncation, the parser bounds-checks every length prefix before
//! allocating, map tables rebuild through the validating
//! [`MapTable::try_from_soa`], and the stored fingerprint must equal the
//! fingerprint recomputed from the decoded trace — so a file that
//! decodes at all is bit-exactly the trace that was saved.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use pointacc_geom::{MapTable, MapTableError};

use crate::trace::{Aggregation, ComputeKind, Fnv, LayerTrace, MappingOp, NetworkTrace, TraceKey};

/// Leading magic of every trace artifact.
pub const MAGIC: [u8; 8] = *b"PACCTRC1";

/// Format version written by [`encode`]; [`decode`] rejects all others.
pub const FORMAT_VERSION: u32 = 1;

/// Conventional file extension of saved artifacts.
pub const EXTENSION: &str = "trace";

/// Why a byte stream or artifact file was rejected. Every variant is a
/// *rejection*, never a panic: corrupt, truncated, or hostile bytes
/// must not take the process down.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// The stream ended before a read completed.
    Truncated {
        /// Byte offset of the read.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The stored checksum does not match the stream contents (bit
    /// flip, truncation past the header, or trailing garbage).
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the received body.
        computed: u64,
    },
    /// The decoded trace's recomputed fingerprint does not match the
    /// stored one (format drift or a hash-colliding corruption).
    FingerprintMismatch {
        /// Fingerprint stored in the body.
        stored: u64,
        /// [`NetworkTrace::fingerprint`] of the decoded trace.
        computed: u64,
    },
    /// A field decoded to a structurally invalid value.
    Corrupt {
        /// Byte offset of the offending field.
        offset: usize,
        /// What was wrong.
        what: String,
    },
    /// The body parsed completely but bytes were left over.
    TrailingBytes {
        /// Bytes consumed by the parse.
        consumed: usize,
        /// Total body length.
        len: usize,
    },
    /// An artifact file named key `found`, but `requested` was asked
    /// for (file-name collision or a renamed file).
    KeyMismatch {
        /// The key the caller asked [`load`] for.
        requested: TraceKey,
        /// The key stored in the file.
        found: TraceKey,
    },
    /// The artifact decoded cleanly — magic, version, checksum and
    /// fingerprint all valid — but its trace failed static verification
    /// ([`verify_trace`](crate::verify::verify_trace)): a corrupt file
    /// whose integrity metadata was recomputed, or a buggy producer.
    /// Refused at load, never executed.
    Rejected(crate::verify::VerifyError),
    /// Filesystem failure while saving or loading (message of the
    /// underlying `std::io::Error`).
    Io(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Truncated { offset, needed, remaining } => write!(
                f,
                "artifact truncated at byte {offset}: needed {needed} bytes, {remaining} left"
            ),
            ArtifactError::BadMagic => write!(f, "not a trace artifact (bad magic)"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact version {v} (this reader speaks {FORMAT_VERSION})")
            }
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            ArtifactError::FingerprintMismatch { stored, computed } => write!(
                f,
                "trace fingerprint mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            ArtifactError::Corrupt { offset, what } => {
                write!(f, "corrupt artifact at byte {offset}: {what}")
            }
            ArtifactError::TrailingBytes { consumed, len } => {
                write!(f, "artifact has {} trailing bytes after the trace", len - consumed)
            }
            ArtifactError::KeyMismatch { requested, found } => {
                write!(f, "artifact key mismatch: requested {requested:?}, file holds {found:?}")
            }
            ArtifactError::Rejected(e) => {
                write!(f, "artifact failed static trace verification: {e}")
            }
            ArtifactError::Io(msg) => write!(f, "artifact I/O failure: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str_(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

fn encode_map_table(e: &mut Enc, table: &MapTable) {
    e.u32(table.n_weights() as u32);
    for &off in table.offsets() {
        e.u64(off as u64);
    }
    for &input in table.inputs() {
        e.u32(input);
    }
    for &output in table.outputs() {
        e.u32(output);
    }
}

fn encode_layer(e: &mut Enc, layer: &LayerTrace) {
    e.str_(&layer.name);
    e.u8(layer.compute.tag());
    e.u64(layer.n_in as u64);
    e.u64(layer.n_out as u64);
    e.u64(layer.in_ch as u64);
    e.u64(layer.out_ch as u64);
    match &layer.maps {
        None => e.u8(0),
        Some(table) => {
            e.u8(1);
            encode_map_table(e, table);
        }
    }
    e.u32(layer.mapping.len() as u32);
    for op in &layer.mapping {
        e.u8(op.tag());
        for field in op.fields() {
            e.u64(field);
        }
    }
    e.u8(layer.aggregation.tag());
    match layer.pool_group {
        None => e.u8(0),
        Some(g) => {
            e.u8(1);
            e.u64(g as u64);
        }
    }
    e.u8(u8::from(layer.fusable));
}

/// Serializes `trace` under `key` into a self-validating byte stream
/// (see the module docs for the wire format). Deterministic: the same
/// `(key, trace)` pair always yields the same bytes, so artifact files
/// are bit-stable across processes and machines.
pub fn encode(key: &TraceKey, trace: &NetworkTrace) -> Vec<u8> {
    let mut body = Enc::new();
    body.str_(&key.network);
    body.u64(key.seed);
    body.u64(key.scale_ppm);
    body.u64(trace.fingerprint());
    body.str_(&trace.network);
    body.str_(&trace.input_desc);
    body.u32(trace.layers.len() as u32);
    for layer in &trace.layers {
        encode_layer(&mut body, layer);
    }

    let mut checksum = Fnv::new();
    checksum.mix_bytes(&body.buf);

    let mut out = Vec::with_capacity(MAGIC.len() + 12 + body.buf.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&checksum.finish().to_le_bytes());
    out.extend_from_slice(&body.buf);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked cursor over the artifact body: every read validates
/// the remaining length first, so no slice index or allocation can
/// exceed the received bytes.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if self.remaining() < n {
            return Err(ArtifactError::Truncated {
                offset: self.pos,
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// `u64` narrowed to `usize` (rejects values above the platform's
    /// address width instead of silently wrapping).
    fn usize_(&mut self) -> Result<usize, ArtifactError> {
        let offset = self.pos;
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| ArtifactError::Corrupt {
            offset,
            what: format!("size field {v} exceeds the platform usize"),
        })
    }

    fn str_(&mut self) -> Result<String, ArtifactError> {
        let offset = self.pos;
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ArtifactError::Corrupt {
            offset,
            what: "string field is not valid UTF-8".into(),
        })
    }

    fn bool_(&mut self) -> Result<bool, ArtifactError> {
        let offset = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(ArtifactError::Corrupt { offset, what: format!("boolean byte {b}") }),
        }
    }

    /// Guard before allocating a vector of `count` items of `item_size`
    /// encoded bytes each: the encoded form must fit in the remaining
    /// stream, which bounds the allocation by the artifact size.
    fn check_count(&self, count: usize, item_size: usize) -> Result<(), ArtifactError> {
        let needed = count.saturating_mul(item_size);
        if needed > self.remaining() {
            return Err(ArtifactError::Truncated {
                offset: self.pos,
                needed,
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

fn decode_map_table(d: &mut Dec<'_>) -> Result<MapTable, ArtifactError> {
    let offset = d.pos;
    let n_weights = d.u32()? as usize;
    d.check_count(n_weights + 1, 8)?;
    let mut offsets = Vec::with_capacity(n_weights + 1);
    for _ in 0..=n_weights {
        offsets.push(d.usize_()?);
    }
    let len = *offsets.last().expect("n_weights + 1 >= 1 offsets");
    d.check_count(len, 8)?;
    let mut inputs = Vec::with_capacity(len);
    for _ in 0..len {
        inputs.push(d.u32()?);
    }
    let mut outputs = Vec::with_capacity(len);
    for _ in 0..len {
        outputs.push(d.u32()?);
    }
    MapTable::try_from_soa(inputs, outputs, offsets).map_err(|e: MapTableError| {
        ArtifactError::Corrupt { offset, what: format!("invalid map table: {e}") }
    })
}

fn decode_mapping_op(d: &mut Dec<'_>) -> Result<MappingOp, ArtifactError> {
    let offset = d.pos;
    let tag = d.u8()?;
    Ok(match tag {
        0 => MappingOp::Quantize { n_in: d.usize_()?, n_out: d.usize_()? },
        1 => MappingOp::KernelMap {
            n_in: d.usize_()?,
            n_out: d.usize_()?,
            kernel_volume: d.usize_()?,
            n_maps: d.usize_()?,
        },
        2 => MappingOp::Fps { n_in: d.usize_()?, n_out: d.usize_()? },
        3 => MappingOp::Knn { n_in: d.usize_()?, n_queries: d.usize_()?, k: d.usize_()? },
        4 => MappingOp::BallQuery { n_in: d.usize_()?, n_queries: d.usize_()?, k: d.usize_()? },
        5 => MappingOp::KnnFeature {
            n_in: d.usize_()?,
            n_queries: d.usize_()?,
            k: d.usize_()?,
            dim: d.usize_()?,
        },
        t => {
            return Err(ArtifactError::Corrupt {
                offset,
                what: format!("unknown mapping-op tag {t}"),
            })
        }
    })
}

fn decode_layer(d: &mut Dec<'_>) -> Result<LayerTrace, ArtifactError> {
    let name = d.str_()?;
    let compute_offset = d.pos;
    let compute = ComputeKind::from_tag(d.u8()?).ok_or_else(|| ArtifactError::Corrupt {
        offset: compute_offset,
        what: "unknown compute-kind tag".into(),
    })?;
    let n_in = d.usize_()?;
    let n_out = d.usize_()?;
    let in_ch = d.usize_()?;
    let out_ch = d.usize_()?;
    let maps = if d.bool_()? { Some(decode_map_table(d)?) } else { None };
    let n_ops = d.u32()? as usize;
    d.check_count(n_ops, 1)?;
    let mut mapping = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        mapping.push(decode_mapping_op(d)?);
    }
    let agg_offset = d.pos;
    let aggregation = Aggregation::from_tag(d.u8()?).ok_or_else(|| ArtifactError::Corrupt {
        offset: agg_offset,
        what: "unknown aggregation tag".into(),
    })?;
    let pool_group = if d.bool_()? { Some(d.usize_()?) } else { None };
    let fusable = d.bool_()?;
    Ok(LayerTrace {
        name,
        compute,
        n_in,
        n_out,
        in_ch,
        out_ch,
        maps,
        mapping,
        aggregation,
        pool_group,
        fusable,
    })
}

/// Deserializes a byte stream produced by [`encode`], validating magic,
/// version, checksum, structure and fingerprint. Unknown versions and
/// truncated, bit-flipped or otherwise corrupt streams are rejected
/// with a typed [`ArtifactError`]; no input can cause a panic or an
/// allocation beyond the stream's own length.
pub fn decode(bytes: &[u8]) -> Result<(TraceKey, NetworkTrace), ArtifactError> {
    let mut header = Dec::new(bytes);
    if header.take(MAGIC.len())? != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = header.u32()?;
    if version != FORMAT_VERSION {
        return Err(ArtifactError::UnsupportedVersion(version));
    }
    let stored_checksum = header.u64()?;
    let body = &bytes[header.pos..];
    let mut checksum = Fnv::new();
    checksum.mix_bytes(body);
    let computed = checksum.finish();
    if computed != stored_checksum {
        return Err(ArtifactError::ChecksumMismatch { stored: stored_checksum, computed });
    }

    let mut d = Dec::new(body);
    let network = d.str_()?;
    let seed = d.u64()?;
    let scale_ppm = d.u64()?;
    let key = TraceKey { network, seed, scale_ppm };
    let stored_fingerprint = d.u64()?;
    let trace_network = d.str_()?;
    let input_desc = d.str_()?;
    let n_layers = d.u32()? as usize;
    d.check_count(n_layers, 2)?;
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        layers.push(decode_layer(&mut d)?);
    }
    if d.pos != body.len() {
        return Err(ArtifactError::TrailingBytes { consumed: d.pos, len: body.len() });
    }
    let trace = NetworkTrace { network: trace_network, input_desc, layers };
    let computed_fp = trace.fingerprint();
    if computed_fp != stored_fingerprint {
        return Err(ArtifactError::FingerprintMismatch {
            stored: stored_fingerprint,
            computed: computed_fp,
        });
    }
    Ok((key, trace))
}

// ---------------------------------------------------------------------
// Artifact files
// ---------------------------------------------------------------------

/// File name an artifact of `key` is stored under: the sanitized
/// network notation for greppability plus an FNV-1a hash of the exact
/// notation (sanitization is lossy — `MinkNet(i)` and `MinkNet[i]`
/// would collide without it), then seed and scale. [`load`] verifies
/// the key stored *inside* the file regardless, so even a crafted
/// collision is rejected rather than served.
pub fn file_name(key: &TraceKey) -> String {
    let sanitized: String = key
        .network
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
        .collect();
    let mut h = Fnv::new();
    h.mix_bytes(key.network.as_bytes());
    format!("{sanitized}-{:08x}-s{}-p{}.{EXTENSION}", h.finish() as u32, key.seed, key.scale_ppm)
}

/// Monotone counter making concurrent temp-file names unique within
/// one process; the pid distinguishes processes sharing the directory.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Saves `trace` under `key` into `dir` (created if missing), returning
/// the artifact path. The write is atomic: bytes go to a unique temp
/// file first and reach the final name via `rename`, so a concurrent
/// [`load`] — from this process or another sharing the directory —
/// either sees the complete artifact or none at all. Concurrent saves
/// of the same key are idempotent last-writer-wins (the bytes are
/// deterministic, so every writer renames identical content).
pub fn save(dir: &Path, key: &TraceKey, trace: &NetworkTrace) -> Result<PathBuf, ArtifactError> {
    fs::create_dir_all(dir)?;
    let final_path = dir.join(file_name(key));
    let tmp_path = dir.join(format!(
        ".tmp-{}-{}-{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        file_name(key)
    ));
    let bytes = encode(key, trace);
    let mut file = fs::File::create(&tmp_path)?;
    let written = file.write_all(&bytes).and_then(|()| file.sync_all());
    drop(file);
    if let Err(e) = written.and_then(|()| fs::rename(&tmp_path, &final_path)) {
        // Best effort: never leave the temp file behind on failure.
        let _ = fs::remove_file(&tmp_path);
        return Err(e.into());
    }
    Ok(final_path)
}

/// Loads the artifact of `key` from `dir`. Returns `Ok(None)` when no
/// artifact exists for the key (a cache miss, not an error); any
/// existing-but-invalid file — truncated, corrupt, wrong version, or
/// holding a different key — is an `Err`, letting callers distinguish
/// "compile it" from "the artifact store is damaged".
///
/// Beyond the codec's integrity checks (checksum, fingerprint), the
/// decoded trace must pass the full static verifier
/// ([`verify_trace`](crate::verify::verify_trace)): a corruption that
/// recomputed the checksum and fingerprint — or a buggy writer — is
/// still refused as [`ArtifactError::Rejected`] instead of being handed
/// to an executor that would index feature rows with it.
pub fn load(dir: &Path, key: &TraceKey) -> Result<Option<NetworkTrace>, ArtifactError> {
    let path = dir.join(file_name(key));
    let bytes = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let (found, trace) = decode(&bytes)?;
    if &found != key {
        return Err(ArtifactError::KeyMismatch { requested: key.clone(), found });
    }
    crate::verify::verify_trace(key, &trace).map_err(ArtifactError::Rejected)?;
    Ok(Some(trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc_geom::MapEntry;

    fn sample_trace() -> NetworkTrace {
        let maps = MapTable::from_entries(
            vec![MapEntry::new(0, 0, 0), MapEntry::new(1, 0, 1), MapEntry::new(1, 1, 0)],
            2,
        );
        NetworkTrace {
            network: "MinkNet(i)".into(),
            input_desc: "SemanticKITTI (123 pts)".into(),
            layers: vec![
                LayerTrace {
                    name: "enc1.conv".into(),
                    compute: ComputeKind::SparseConv,
                    n_in: 2,
                    n_out: 2,
                    in_ch: 4,
                    out_ch: 8,
                    maps: Some(maps),
                    mapping: vec![MappingOp::KernelMap {
                        n_in: 2,
                        n_out: 2,
                        kernel_volume: 2,
                        n_maps: 3,
                    }],
                    aggregation: Aggregation::Sum,
                    pool_group: None,
                    fusable: false,
                },
                LayerTrace {
                    name: "head".into(),
                    compute: ComputeKind::Dense,
                    n_in: 2,
                    n_out: 2,
                    in_ch: 8,
                    out_ch: 20,
                    maps: None,
                    mapping: vec![],
                    aggregation: Aggregation::Max,
                    pool_group: Some(2),
                    fusable: true,
                },
            ],
        }
    }

    fn sample_key() -> TraceKey {
        TraceKey::new("MinkNet(i)", 42, 0.05)
    }

    #[test]
    fn encode_decode_roundtrips_bit_exactly() {
        let (key, trace) = (sample_key(), sample_trace());
        let bytes = encode(&key, &trace);
        let (key2, trace2) = decode(&bytes).unwrap();
        assert_eq!(key2, key);
        assert_eq!(trace2, trace);
        assert_eq!(trace2.fingerprint(), trace.fingerprint());
        // Determinism: re-encoding the decoded trace yields the same
        // bytes, so artifacts are bit-stable across processes.
        assert_eq!(encode(&key2, &trace2), bytes);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode(&sample_key(), &sample_trace());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "prefix of {cut} bytes must be rejected");
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = encode(&sample_key(), &sample_trace());
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 1 << (byte % 8);
            assert!(
                decode(&flipped).is_err(),
                "flip of bit {} in byte {byte} must be rejected",
                byte % 8
            );
        }
    }

    #[test]
    fn unknown_versions_are_rejected_with_the_version() {
        let mut bytes = encode(&sample_key(), &sample_trace());
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(decode(&bytes), Err(ArtifactError::UnsupportedVersion(2)));
    }

    #[test]
    fn bad_magic_and_trailing_bytes_are_rejected() {
        let mut bytes = encode(&sample_key(), &sample_trace());
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(ArtifactError::BadMagic));
        let mut padded = encode(&sample_key(), &sample_trace());
        padded.push(0);
        // Appended garbage lands inside the checksummed region.
        assert!(matches!(decode(&padded), Err(ArtifactError::ChecksumMismatch { .. })));
    }

    #[test]
    fn empty_and_tiny_streams_are_truncation_errors() {
        assert!(matches!(decode(&[]), Err(ArtifactError::Truncated { .. })));
        assert!(matches!(decode(&MAGIC[..5]), Err(ArtifactError::Truncated { .. })));
    }

    #[test]
    fn file_names_are_fs_safe_and_key_distinct() {
        let a = file_name(&TraceKey::new("MinkNet(i)", 42, 0.05));
        let b = file_name(&TraceKey::new("MinkNet(o)", 42, 0.05));
        let c = file_name(&TraceKey::new("MinkNet(i)", 43, 0.05));
        let d = file_name(&TraceKey::new("MinkNet(i)", 42, 0.1));
        assert!(a.chars().all(|ch| ch.is_ascii_alphanumeric() || "-._".contains(ch)), "{a}");
        assert!(a != b && a != c && a != d);
        // Sanitization alone would collide these; the embedded hash of
        // the exact notation keeps the files apart.
        let e = file_name(&TraceKey::new("MinkNet[i]", 42, 0.05));
        assert_ne!(a, e);
    }

    #[test]
    fn save_load_roundtrips_and_misses_cleanly() {
        let dir = std::env::temp_dir()
            .join(format!("pointacc-artifact-test-{}", std::process::id()))
            .join("roundtrip");
        let (key, trace) = (sample_key(), sample_trace());
        let path = save(&dir, &key, &trace).unwrap();
        assert!(path.starts_with(&dir));
        assert_eq!(load(&dir, &key).unwrap(), Some(trace.clone()));
        // A key without an artifact is a clean miss, not an error.
        assert_eq!(load(&dir, &TraceKey::new("PointNet", 1, 0.5)).unwrap(), None);
        // A damaged file is an error, not a panic or a bogus trace.
        fs::write(dir.join(file_name(&key)), b"PACCTRC1 garbage").unwrap();
        assert!(load(&dir, &key).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_corrupt_artifacts_with_recomputed_integrity_metadata() {
        let dir = std::env::temp_dir()
            .join(format!("pointacc-artifact-test-{}", std::process::id()))
            .join("verify-reject");
        let (key, mut trace) = (sample_key(), sample_trace());
        // Flip a map's input index out of bounds, then write the trace
        // through the honest encoder — which recomputes the checksum
        // *and* the fingerprint over the corrupted table, so the codec's
        // integrity checks all pass. Only the static verifier stands
        // between this file and a gather that indexes row 99 of 2.
        let m = trace.layers[0].maps.as_mut().unwrap();
        let mut inputs = m.inputs().to_vec();
        inputs[0] = 99;
        *m = MapTable::try_from_soa(inputs, m.outputs().to_vec(), m.offsets().to_vec()).unwrap();
        save(&dir, &key, &trace).unwrap();
        // decode alone accepts the bytes (checksum and fingerprint are
        // self-consistent) — the rejection is the verifier's.
        let bytes = fs::read(dir.join(file_name(&key))).unwrap();
        assert!(decode(&bytes).is_ok());
        match load(&dir, &key) {
            Err(ArtifactError::Rejected(crate::verify::VerifyError::InputIndexOutOfBounds {
                layer: 0,
                index: 99,
                bound: 2,
                ..
            })) => {}
            other => panic!("expected a verifier rejection, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_a_file_holding_a_different_key() {
        let dir = std::env::temp_dir()
            .join(format!("pointacc-artifact-test-{}", std::process::id()))
            .join("keymismatch");
        let (key, trace) = (sample_key(), sample_trace());
        let other = TraceKey::new("PointNet", 7, 0.25);
        // Simulate a renamed/misplaced artifact: valid bytes for `key`
        // sitting under `other`'s file name.
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(file_name(&other)), encode(&key, &trace)).unwrap();
        assert_eq!(
            load(&dir, &other),
            Err(ArtifactError::KeyMismatch { requested: other, found: key })
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
