//! Network statistics (paper Fig. 2 and Fig. 5): #MACs, parameters,
//! per-point feature footprint, plus 2-D CNN reference constants.

use crate::{ComputeKind, NetworkTrace};

/// Aggregate statistics of one executed network.
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkStats {
    /// Network name.
    pub name: String,
    /// Total multiply-accumulates.
    pub macs: u64,
    /// MACs per input point (Fig. 5 middle).
    pub macs_per_point: u64,
    /// Total weight parameters.
    pub params: u64,
    /// Peak activation bytes per input point at fp16 (Fig. 5 right).
    pub feature_bytes_per_point: u64,
    /// Total maps across sparse layers.
    pub maps: u64,
    /// Total scalar mapping-operation work.
    pub mapping_ops: u64,
}

/// Computes statistics from a trace.
pub fn network_stats(trace: &NetworkTrace) -> NetworkStats {
    let n = trace.input_points().max(1) as u64;
    let params: u64 = trace
        .layers
        .iter()
        .map(|l| match l.compute {
            ComputeKind::SparseConv => {
                let n_w = l.maps.as_ref().map_or(1, |m| m.n_weights()) as u64;
                n_w * l.in_ch as u64 * l.out_ch as u64
            }
            ComputeKind::Grouped | ComputeKind::Dense => l.in_ch as u64 * l.out_ch as u64,
            _ => 0,
        })
        .sum();
    NetworkStats {
        name: trace.network.clone(),
        macs: trace.total_macs(),
        macs_per_point: trace.total_macs() / n,
        params,
        feature_bytes_per_point: trace.peak_feature_bytes_per_point(2),
        maps: trace.total_maps(),
        mapping_ops: trace.total_mapping_ops(),
    }
}

/// Reference statistics for models this reproduction does not execute
/// (2-D CNNs of Fig. 2/5 and the projection-based LiDAR networks of
/// Fig. 2). Accuracy values are quoted from the paper/literature and are
/// labelled as such wherever printed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReferenceModel {
    /// Model name.
    pub name: &'static str,
    /// Total MACs for the canonical input, in billions.
    pub gmacs: f64,
    /// Parameter count, millions.
    pub mparams: f64,
    /// Accuracy metric value (top-1 % or mIoU %), quoted.
    pub accuracy: f64,
    /// Metric name.
    pub metric: &'static str,
    /// Whether the model processes 3-D points directly.
    pub is_point_based: bool,
}

/// Fig. 2 reference set: projection-based 2-D CNNs vs point cloud
/// networks on SemanticKITTI (accuracy numbers quoted from the paper's
/// sources).
pub const FIG2_MODELS: [ReferenceModel; 4] = [
    ReferenceModel {
        name: "SqueezeSeg",
        gmacs: 13.0,
        mparams: 1.0,
        accuracy: 30.8,
        metric: "mIoU",
        is_point_based: false,
    },
    ReferenceModel {
        name: "SalsaNext",
        gmacs: 62.8,
        mparams: 6.7,
        accuracy: 59.5,
        metric: "mIoU",
        is_point_based: false,
    },
    ReferenceModel {
        name: "MinkowskiNet",
        gmacs: 114.0,
        mparams: 21.7,
        accuracy: 63.1,
        metric: "mIoU",
        is_point_based: true,
    },
    ReferenceModel {
        name: "SPVNAS",
        gmacs: 118.6,
        mparams: 12.5,
        accuracy: 66.4,
        metric: "mIoU",
        is_point_based: true,
    },
];

/// Fig. 5 2-D CNN reference points (ImageNet classifiers).
pub const CNN_MODELS: [ReferenceModel; 2] = [
    ReferenceModel {
        name: "MobileNetV2",
        gmacs: 0.3,
        mparams: 3.5,
        accuracy: 71.9,
        metric: "top-1",
        is_point_based: false,
    },
    ReferenceModel {
        name: "ResNet50",
        gmacs: 4.1,
        mparams: 25.6,
        accuracy: 76.1,
        metric: "top-1",
        is_point_based: false,
    },
];

/// MACs per input element for a 2-D CNN on its canonical input
/// (224×224 pixels), for the Fig. 5 comparison.
pub fn cnn_macs_per_pixel(model: &ReferenceModel) -> u64 {
    ((model.gmacs * 1e9) / (224.0 * 224.0)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{zoo, ExecMode, Executor};
    use pointacc_geom::{Point3, PointSet};

    fn cloud(n: usize) -> PointSet {
        (0..n)
            .map(|i| {
                let t = i as f32;
                Point3::new((t * 0.7).sin(), (t * 0.3).cos(), (t * 0.11).sin() * 0.5)
            })
            .collect()
    }

    #[test]
    fn stats_are_positive_and_consistent() {
        let out = Executor::new(ExecMode::Full, 1).run(&zoo::pointnet(), &cloud(256));
        let s = network_stats(&out.trace);
        assert!(s.macs > 0);
        assert_eq!(s.macs_per_point, s.macs / 256);
        assert!(s.params > 0);
    }

    #[test]
    fn point_networks_have_higher_macs_per_point_than_cnns() {
        // Fig. 5 middle: point cloud networks spend up to 100× more MACs
        // per point than CNNs per pixel.
        let out = Executor::new(ExecMode::TraceOnly, 1)
            .run(&zoo::pointnet_pp_classification(), &cloud(1024));
        let s = network_stats(&out.trace);
        let resnet = cnn_macs_per_pixel(&CNN_MODELS[1]);
        assert!(
            s.macs_per_point > resnet,
            "PointNet++ {} MACs/pt should exceed ResNet50 {} MACs/px",
            s.macs_per_point,
            resnet
        );
    }
}
