//! Typed execution errors.
//!
//! Every way a network/tensor combination can be malformed surfaces as an
//! [`ExecError`] from [`Executor::try_run`](crate::Executor::try_run)
//! instead of a panic, so serving layers can count and report bad
//! requests without poisoning a worker thread.

use std::fmt;

/// Why the executor refused to run (or continue running) a network.
///
/// `layer` fields carry the index of the layer trace being built when the
/// fault was detected, so a 40-op U-Net pinpoints the offending stage.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// The input point cloud was empty.
    EmptyInput,
    /// A voxel-based network was built without a voxel size.
    MissingVoxelSize {
        /// Name of the offending network.
        network: String,
    },
    /// The configured voxel size is zero, negative, or non-finite.
    InvalidVoxelSize {
        /// Name of the offending network.
        network: String,
        /// The rejected voxel size.
        voxel_size: f32,
    },
    /// An operator needed a different tensor kind than the one flowing
    /// in (e.g. `SparseConv` on a continuous point cloud, or a `Head`
    /// before any global pooling).
    DomainMismatch {
        /// Layer index at the point of failure.
        layer: usize,
        /// Operator name.
        op: &'static str,
        /// Tensor kind the operator requires.
        expected: &'static str,
        /// Tensor kind that was actually flowing in.
        found: &'static str,
    },
    /// A decoder operator (`SparseConvTr`, `FeaturePropagation`) popped
    /// an empty skip stack — the encoder never pushed a matching level.
    MissingSkip {
        /// Layer index at the point of failure.
        layer: usize,
        /// Operator name.
        op: &'static str,
    },
    /// A decoder operator popped a skip of the wrong tensor kind (e.g. a
    /// `SparseConvTr` finding a point-cloud skip pushed by a
    /// `SetAbstraction`).
    SkipMismatch {
        /// Layer index at the point of failure.
        layer: usize,
        /// Operator name.
        op: &'static str,
        /// Tensor kind the operator requires the skip to be.
        expected: &'static str,
        /// Tensor kind of the popped skip.
        found: &'static str,
    },
    /// A feature-space distance computation produced NaN (a NaN or
    /// overflowed feature value reached a mapping operation, e.g.
    /// DGCNN's feature-space k-NN graph).
    NonFiniteFeature {
        /// Layer index at the point of failure.
        layer: usize,
        /// Operator name.
        op: &'static str,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::EmptyInput => write!(f, "cannot execute on an empty point cloud"),
            ExecError::MissingVoxelSize { network } => {
                write!(f, "voxel-based network `{network}` requires a voxel size")
            }
            ExecError::InvalidVoxelSize { network, voxel_size } => {
                write!(f, "network `{network}` has invalid voxel size {voxel_size}")
            }
            ExecError::DomainMismatch { layer, op, expected, found } => {
                write!(f, "layer {layer}: {op} requires a {expected} tensor, found {found}")
            }
            ExecError::MissingSkip { layer, op } => {
                write!(f, "layer {layer}: {op} requires a matching encoder skip, but the skip stack is empty")
            }
            ExecError::SkipMismatch { layer, op, expected, found } => {
                write!(f, "layer {layer}: {op} requires a {expected} skip, found {found}")
            }
            ExecError::NonFiniteFeature { layer, op } => {
                write!(
                    f,
                    "layer {layer}: {op} computed a NaN feature-space distance \
                     (non-finite feature values)"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_pinpoints_the_layer() {
        let e = ExecError::MissingSkip { layer: 7, op: "SparseConvTr" };
        let msg = e.to_string();
        assert!(msg.contains("layer 7"), "{msg}");
        assert!(msg.contains("SparseConvTr"), "{msg}");
        assert!(msg.contains("skip stack is empty"), "{msg}");
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&ExecError::EmptyInput);
        assert_eq!(ExecError::EmptyInput.to_string(), "cannot execute on an empty point cloud");
    }
}
