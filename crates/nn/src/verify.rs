//! Static semantic verification of compiled traces.
//!
//! A [`NetworkTrace`](crate::NetworkTrace) is trusted by every consumer
//! in the workspace: timing models index its map tables straight into
//! feature rows, the serve stack replays it for millions of simulated
//! requests, and the artifact codec persists it across processes. The
//! executor constructs well-formed traces by design, but traces also
//! arrive from *untrusted* sources — disk artifacts whose checksum was
//! recomputed after corruption, or future builders with bugs. This
//! module proves a trace well-formed **before** it is executed:
//!
//! - **CSR well-formedness** of every map table: monotone,
//!   non-overflowing group offsets covering the parallel index arrays
//!   ([`MapTable::validate`]).
//! - **Index bounds**: every map's input index stays inside the layer's
//!   input domain and every output index inside its scatter domain,
//!   with the offending group/entry named in the error.
//! - **Mapping-op consistency**: the recorded mapping operations match
//!   the layer kind (quantize/kernel-map for SparseConv, FPS + ball
//!   query for set abstraction, feature-space k-NN for EdgeConv, k-NN
//!   for interpolation) and their size fields agree with the layer and
//!   the table (kernel volume = weight groups, declared map count =
//!   table length).
//! - **Cross-layer dataflow**: layer *n*'s effective output rows and
//!   channels (after neighborhood pooling and skip concatenation) feed
//!   layer *n+1*, and every decoder layer pops a skip connection whose
//!   domain and kind match what the encoder pushed.
//! - **Metadata consistency**: aggregation, pool grouping and
//!   fusability are the unique combination the executor emits for each
//!   compute kind.
//!
//! [`verify_trace`] checks structure; [`verify_with_fingerprint`]
//! additionally pins the content hash, which is what
//! [`artifact::load`](crate::artifact::load) uses to refuse
//! corrupt-but-checksum-valid files.

use crate::trace::{Aggregation, ComputeKind, LayerTrace, MappingOp, NetworkTrace, TraceKey};
use pointacc_geom::{MapTable, MapTableError};
use std::fmt;

/// Summary of a successful verification pass.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct VerifyReport {
    /// Layers checked.
    pub layers: usize,
    /// Map tables validated.
    pub tables: usize,
    /// Total map entries bounds-checked.
    pub map_entries: u64,
    /// Content fingerprint of the verified trace
    /// ([`NetworkTrace::fingerprint`]).
    pub fingerprint: u64,
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} layers, {} map tables, {} map entries, fingerprint {:016x}",
            self.layers, self.tables, self.map_entries, self.fingerprint
        )
    }
}

/// Why a trace failed static verification. Every variant names the
/// offending layer (and where applicable the weight group and entry) so
/// a rejected artifact is diagnosable without re-execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A layer shape field that must be positive is zero.
    EmptyShape {
        /// Index of the offending layer.
        layer: usize,
        /// Which shape field is empty.
        what: &'static str,
    },
    /// A map table violates the CSR invariants.
    MalformedTable {
        /// Index of the offending layer.
        layer: usize,
        /// The underlying CSR violation.
        source: MapTableError,
    },
    /// The layer kind requires a map table but the layer has none.
    MissingMaps {
        /// Index of the offending layer.
        layer: usize,
    },
    /// The layer kind forbids a map table but the layer has one.
    UnexpectedMaps {
        /// Index of the offending layer.
        layer: usize,
    },
    /// A map's input index is outside the layer's input domain.
    InputIndexOutOfBounds {
        /// Index of the offending layer.
        layer: usize,
        /// Weight group holding the offending map.
        group: usize,
        /// Entry position within the group.
        entry: usize,
        /// The out-of-range index.
        index: u32,
        /// Domain size the index must stay below.
        bound: usize,
    },
    /// A map's output index is outside the layer's scatter domain.
    OutputIndexOutOfBounds {
        /// Index of the offending layer.
        layer: usize,
        /// Weight group holding the offending map.
        group: usize,
        /// Entry position within the group.
        entry: usize,
        /// The out-of-range index.
        index: u32,
        /// Domain size the index must stay below.
        bound: usize,
    },
    /// A kernel-map op's kernel volume disagrees with the table's
    /// weight-group count.
    KernelVolumeMismatch {
        /// Index of the offending layer.
        layer: usize,
        /// Kernel volume the mapping op declares.
        declared: usize,
        /// Weight groups the table actually holds.
        groups: usize,
    },
    /// The declared map count disagrees with the table length.
    MapCountMismatch {
        /// Index of the offending layer.
        layer: usize,
        /// Map count the layer metadata declares.
        declared: usize,
        /// Maps the table actually holds.
        found: usize,
    },
    /// A shared-weight table holds the wrong number of weight groups.
    WeightGroups {
        /// Index of the offending layer.
        layer: usize,
        /// Groups the layer kind requires.
        expected: usize,
        /// Groups the table holds.
        found: usize,
    },
    /// The mapping-op sequence does not match the layer kind.
    MappingOps {
        /// Index of the offending layer.
        layer: usize,
        /// What was expected.
        detail: String,
    },
    /// A mapping op's size fields disagree with the layer shapes.
    MappingShape {
        /// Index of the offending layer.
        layer: usize,
        /// Position of the op in the layer's mapping sequence.
        op: usize,
        /// What disagrees.
        detail: String,
    },
    /// An intra-layer shape rule is violated.
    ShapeInvariant {
        /// Index of the offending layer.
        layer: usize,
        /// The violated rule.
        detail: String,
    },
    /// The aggregation is not the one the compute kind mandates.
    AggregationMismatch {
        /// Index of the offending layer.
        layer: usize,
        /// Aggregation the kind requires here.
        expected: Aggregation,
        /// Aggregation the layer records.
        found: Aggregation,
    },
    /// The pool grouping is inconsistent with the layer.
    PoolGroup {
        /// Index of the offending layer.
        layer: usize,
        /// What disagrees.
        detail: String,
    },
    /// The fusability flag is wrong for the compute kind.
    Fusability {
        /// Index of the offending layer.
        layer: usize,
        /// Fusability the kind mandates.
        expected: bool,
    },
    /// A layer's input rows disagree with the previous layer's output.
    RowMismatch {
        /// Index of the offending layer.
        layer: usize,
        /// Rows the previous layer produces.
        expected: usize,
        /// Rows the layer declares as input.
        found: usize,
    },
    /// A layer's input channels disagree with the previous layer's
    /// output (after skip concatenation / grouping expansion).
    ChannelMismatch {
        /// Index of the offending layer.
        layer: usize,
        /// Channels the previous layer feeds forward.
        expected: usize,
        /// Channels the layer declares as input.
        found: usize,
    },
    /// A decoder layer pops a skip connection that was never pushed.
    SkipUnderflow {
        /// Index of the offending layer.
        layer: usize,
    },
    /// The popped skip connection is the wrong kind (voxel vs point).
    SkipKindMismatch {
        /// Index of the offending layer.
        layer: usize,
    },
    /// The popped skip connection's domain disagrees with the layer's
    /// output domain.
    SkipDomainMismatch {
        /// Index of the offending layer.
        layer: usize,
        /// Rows the matching encoder stage pushed.
        skip_rows: usize,
        /// Output rows the decoder layer declares.
        n_out: usize,
    },
    /// The trace's content hash differs from the expected fingerprint.
    FingerprintMismatch {
        /// Fingerprint the caller expected.
        expected: u64,
        /// Fingerprint the trace hashes to.
        found: u64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EmptyShape { layer, what } => {
                write!(f, "layer {layer}: {what} must be positive")
            }
            VerifyError::MalformedTable { layer, source } => {
                write!(f, "layer {layer}: malformed map table: {source}")
            }
            VerifyError::MissingMaps { layer } => {
                write!(f, "layer {layer}: compute kind requires a map table")
            }
            VerifyError::UnexpectedMaps { layer } => {
                write!(f, "layer {layer}: compute kind forbids a map table")
            }
            VerifyError::InputIndexOutOfBounds { layer, group, entry, index, bound } => write!(
                f,
                "layer {layer}: map (group {group}, entry {entry}) input {index} \
                 outside input domain of {bound}"
            ),
            VerifyError::OutputIndexOutOfBounds { layer, group, entry, index, bound } => write!(
                f,
                "layer {layer}: map (group {group}, entry {entry}) output {index} \
                 outside output domain of {bound}"
            ),
            VerifyError::KernelVolumeMismatch { layer, declared, groups } => write!(
                f,
                "layer {layer}: declared kernel volume {declared} != {groups} weight groups"
            ),
            VerifyError::MapCountMismatch { layer, declared, found } => {
                write!(f, "layer {layer}: declared {declared} maps, table holds {found}")
            }
            VerifyError::WeightGroups { layer, expected, found } => {
                write!(f, "layer {layer}: expected {expected} weight groups, found {found}")
            }
            VerifyError::MappingOps { layer, detail } => {
                write!(f, "layer {layer}: mapping ops: {detail}")
            }
            VerifyError::MappingShape { layer, op, detail } => {
                write!(f, "layer {layer}: mapping op {op}: {detail}")
            }
            VerifyError::ShapeInvariant { layer, detail } => {
                write!(f, "layer {layer}: {detail}")
            }
            VerifyError::AggregationMismatch { layer, expected, found } => {
                write!(f, "layer {layer}: expected {expected:?} aggregation, found {found:?}")
            }
            VerifyError::PoolGroup { layer, detail } => {
                write!(f, "layer {layer}: pool group: {detail}")
            }
            VerifyError::Fusability { layer, expected } => {
                write!(f, "layer {layer}: fusable must be {expected} for this compute kind")
            }
            VerifyError::RowMismatch { layer, expected, found } => write!(
                f,
                "layer {layer}: input rows {found} != {expected} rows produced by the previous layer"
            ),
            VerifyError::ChannelMismatch { layer, expected, found } => write!(
                f,
                "layer {layer}: input channels {found} != {expected} fed by the previous layer"
            ),
            VerifyError::SkipUnderflow { layer } => {
                write!(f, "layer {layer}: pops a skip connection that was never pushed")
            }
            VerifyError::SkipKindMismatch { layer } => {
                write!(f, "layer {layer}: popped skip connection has the wrong tensor kind")
            }
            VerifyError::SkipDomainMismatch { layer, skip_rows, n_out } => write!(
                f,
                "layer {layer}: skip connection carries {skip_rows} rows but the layer \
                 upsamples to {n_out}"
            ),
            VerifyError::FingerprintMismatch { expected, found } => write!(
                f,
                "trace fingerprint {found:016x} != expected {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::MalformedTable { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Tensor kind of a skip-connection entry (mirrors the executor's
/// `State::Vox` / `State::Pts` distinction).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum SkipKind {
    /// Pushed by a strided SparseConv encoder stage.
    Voxel,
    /// Pushed by a set-abstraction stage.
    Point,
}

/// One entry of the simulated skip stack.
#[derive(Copy, Clone, Debug)]
struct Skip {
    rows: usize,
    ch: usize,
    kind: SkipKind,
}

/// Rows and channels a layer feeds to its successor (after neighborhood
/// pooling and skip concatenation).
#[derive(Copy, Clone, Debug)]
struct Flow {
    rows: usize,
    ch: usize,
}

/// Statically verifies a compiled trace against every invariant the
/// executor guarantees by construction (see the module docs), walking
/// the layers with a simulated skip stack exactly as the hardware
/// models will replay them.
///
/// The `key` is the cache/artifact identity the trace is served under.
/// Binding trace to key (network name, checksum, fingerprint) is the
/// artifact layer's job — network names are deliberately outside the
/// structural identity — so the key does not influence the structural
/// checks.
pub fn verify_trace(key: &TraceKey, trace: &NetworkTrace) -> Result<VerifyReport, VerifyError> {
    let _ = key;
    let mut report = VerifyReport { layers: trace.layers.len(), ..VerifyReport::default() };
    let mut stack: Vec<Skip> = Vec::new();
    let mut prev: Option<Flow> = None;

    for (i, l) in trace.layers.iter().enumerate() {
        check_shapes(i, l)?;
        if let Some(m) = &l.maps {
            m.validate().map_err(|source| VerifyError::MalformedTable { layer: i, source })?;
            report.tables += 1;
            report.map_entries += m.len() as u64;
        }
        if let Some(p) = prev {
            if l.n_in != p.rows {
                return Err(VerifyError::RowMismatch { layer: i, expected: p.rows, found: l.n_in });
            }
            let expected_ch = expected_in_ch(l, p.ch);
            if l.in_ch != expected_ch {
                return Err(VerifyError::ChannelMismatch {
                    layer: i,
                    expected: expected_ch,
                    found: l.in_ch,
                });
            }
        }
        let flow = match l.compute {
            ComputeKind::SparseConv => verify_sparse(i, l, &mut stack)?,
            ComputeKind::Grouped => verify_grouped(i, l, &mut stack)?,
            ComputeKind::Dense => verify_dense(i, l)?,
            ComputeKind::Interpolate => verify_interpolate(i, l, &mut stack)?,
            ComputeKind::Pool => verify_pool(i, l)?,
        };
        prev = Some(flow);
    }
    // Unpopped skips are legal: classification networks abstract away
    // from their encoder levels without ever propagating back.
    report.fingerprint = trace.fingerprint();
    Ok(report)
}

/// [`verify_trace`] plus fingerprint agreement: the trace must hash to
/// `expected`. This is the artifact-load entry point — a corrupted body
/// whose checksum was recomputed still fails here unless the corruption
/// also recomputed the fingerprint *and* kept the structure legal.
pub fn verify_with_fingerprint(
    key: &TraceKey,
    trace: &NetworkTrace,
    expected: u64,
) -> Result<VerifyReport, VerifyError> {
    let report = verify_trace(key, trace)?;
    if report.fingerprint != expected {
        return Err(VerifyError::FingerprintMismatch { expected, found: report.fingerprint });
    }
    Ok(report)
}

/// Channels layer `l` must declare as input given the `prev_ch` its
/// predecessor feeds forward: grouping expands the channel count
/// (relative-coordinate concat for set abstraction, `(f_i, f_j - f_i)`
/// pairs for EdgeConv); every other kind consumes them unchanged.
fn expected_in_ch(l: &LayerTrace, prev_ch: usize) -> usize {
    if l.compute == ComputeKind::Grouped {
        if matches!(l.mapping.first(), Some(MappingOp::KnnFeature { .. })) {
            return 2 * prev_ch;
        }
        return prev_ch + 3;
    }
    prev_ch
}

fn check_shapes(i: usize, l: &LayerTrace) -> Result<(), VerifyError> {
    for (value, what) in
        [(l.n_in, "n_in"), (l.n_out, "n_out"), (l.in_ch, "in_ch"), (l.out_ch, "out_ch")]
    {
        if value == 0 {
            return Err(VerifyError::EmptyShape { layer: i, what });
        }
    }
    Ok(())
}

/// Bounds-checks every map entry: inputs below `in_bound`, outputs
/// below `out_bound`, with group/entry attribution on failure.
fn check_bounds(
    i: usize,
    m: &MapTable,
    in_bound: usize,
    out_bound: usize,
) -> Result<(), VerifyError> {
    for group in 0..m.n_weights() {
        let g = m.group(group);
        for (entry, (&input, &output)) in g.inputs().iter().zip(g.outputs()).enumerate() {
            if input as usize >= in_bound {
                return Err(VerifyError::InputIndexOutOfBounds {
                    layer: i,
                    group,
                    entry,
                    index: input,
                    bound: in_bound,
                });
            }
            if output as usize >= out_bound {
                return Err(VerifyError::OutputIndexOutOfBounds {
                    layer: i,
                    group,
                    entry,
                    index: output,
                    bound: out_bound,
                });
            }
        }
    }
    Ok(())
}

/// Checks a kernel-map op's declared volume and map count against the
/// table.
fn check_kernel_decl(
    i: usize,
    m: &MapTable,
    kernel_volume: usize,
    n_maps: usize,
) -> Result<(), VerifyError> {
    if kernel_volume != m.n_weights() {
        return Err(VerifyError::KernelVolumeMismatch {
            layer: i,
            declared: kernel_volume,
            groups: m.n_weights(),
        });
    }
    if n_maps != m.len() {
        return Err(VerifyError::MapCountMismatch { layer: i, declared: n_maps, found: m.len() });
    }
    Ok(())
}

fn verify_sparse(i: usize, l: &LayerTrace, stack: &mut Vec<Skip>) -> Result<Flow, VerifyError> {
    if l.fusable {
        return Err(VerifyError::Fusability { layer: i, expected: false });
    }
    if l.aggregation != Aggregation::Sum {
        return Err(VerifyError::AggregationMismatch {
            layer: i,
            expected: Aggregation::Sum,
            found: l.aggregation,
        });
    }
    if let Some(g) = l.pool_group {
        return Err(VerifyError::PoolGroup {
            layer: i,
            detail: format!("sparse conv layers never pool (found group {g})"),
        });
    }
    let m = l.maps.as_ref().ok_or(VerifyError::MissingMaps { layer: i })?;
    match l.mapping.as_slice() {
        // Strided downsampling conv: quantize then map, and remember the
        // finer level for the decoder.
        [MappingOp::Quantize { n_in: qi, n_out: qo }, MappingOp::KernelMap { n_in: ki, n_out: ko, kernel_volume, n_maps }] =>
        {
            if *qi != l.n_in || *qo != l.n_out {
                return Err(VerifyError::MappingShape {
                    layer: i,
                    op: 0,
                    detail: format!("quantize {qi}→{qo} != layer domain {}→{}", l.n_in, l.n_out),
                });
            }
            if qo > qi {
                return Err(VerifyError::MappingShape {
                    layer: i,
                    op: 0,
                    detail: format!("quantization cannot grow the cloud ({qi}→{qo})"),
                });
            }
            if *ki != l.n_in || *ko != l.n_out {
                return Err(VerifyError::MappingShape {
                    layer: i,
                    op: 1,
                    detail: format!("kernel map {ki}→{ko} != layer domain {}→{}", l.n_in, l.n_out),
                });
            }
            check_kernel_decl(i, m, *kernel_volume, *n_maps)?;
            check_bounds(i, m, l.n_in, l.n_out)?;
            stack.push(Skip { rows: l.n_in, ch: l.in_ch, kind: SkipKind::Voxel });
            Ok(Flow { rows: l.n_out, ch: l.out_ch })
        }
        // Unit-stride conv, or the decoder's transposed conv.
        [MappingOp::KernelMap { n_in: ki, n_out: ko, kernel_volume, n_maps }] => {
            // A transposed conv changes resolution (n_in != n_out); when
            // the cloud sizes coincide, the zoo's kernel parities break
            // the tie: unit-stride convs use odd kernels (3³), up/down
            // convs even ones (2³) — and a transposed conv must find its
            // matching encoder level on top of the skip stack.
            let transposed = if l.n_in != l.n_out {
                true
            } else {
                kernel_volume % 2 == 0
                    && matches!(
                        stack.last(),
                        Some(s) if s.kind == SkipKind::Voxel && s.rows == l.n_out
                    )
            };
            let (want_ki, want_ko) = if transposed {
                // The op records the forward fine→coarse construction.
                (l.n_out, l.n_in)
            } else {
                (l.n_in, l.n_out)
            };
            if *ki != want_ki || *ko != want_ko {
                return Err(VerifyError::MappingShape {
                    layer: i,
                    op: 0,
                    detail: format!("kernel map {ki}→{ko} != expected {want_ki}→{want_ko}"),
                });
            }
            check_kernel_decl(i, m, *kernel_volume, *n_maps)?;
            check_bounds(i, m, l.n_in, l.n_out)?;
            if transposed {
                let s = stack.pop().ok_or(VerifyError::SkipUnderflow { layer: i })?;
                if s.kind != SkipKind::Voxel {
                    return Err(VerifyError::SkipKindMismatch { layer: i });
                }
                if s.rows != l.n_out {
                    return Err(VerifyError::SkipDomainMismatch {
                        layer: i,
                        skip_rows: s.rows,
                        n_out: l.n_out,
                    });
                }
                // U-Net concatenation: the decoder output carries the
                // conv channels plus the skip channels.
                return Ok(Flow { rows: l.n_out, ch: l.out_ch + s.ch });
            }
            Ok(Flow { rows: l.n_out, ch: l.out_ch })
        }
        other => Err(VerifyError::MappingOps {
            layer: i,
            detail: format!(
                "sparse conv expects [Quantize, KernelMap] or [KernelMap], got {} ops",
                other.len()
            ),
        }),
    }
}

fn verify_grouped(i: usize, l: &LayerTrace, stack: &mut Vec<Skip>) -> Result<Flow, VerifyError> {
    if !l.fusable {
        return Err(VerifyError::Fusability { layer: i, expected: true });
    }
    let m = l.maps.as_ref().ok_or(VerifyError::MissingMaps { layer: i })?;
    if m.n_weights() != 1 {
        return Err(VerifyError::WeightGroups { layer: i, expected: 1, found: m.n_weights() });
    }
    let k = match l.mapping.as_slice() {
        // EdgeConv: feature-space k-NN over the layer's own cloud.
        [MappingOp::KnnFeature { n_in, n_queries, k, dim }] => {
            if *n_in != l.n_in || *n_queries != l.n_in {
                return Err(VerifyError::MappingShape {
                    layer: i,
                    op: 0,
                    detail: format!(
                        "edge conv queries its own cloud: knn {n_in} over {n_queries} queries \
                         != layer n_in {}",
                        l.n_in
                    ),
                });
            }
            if l.n_out != n_queries * k {
                return Err(VerifyError::ShapeInvariant {
                    layer: i,
                    detail: format!(
                        "grouped rows {} != {n_queries} queries × {k} neighbors",
                        l.n_out
                    ),
                });
            }
            if l.in_ch != 2 * dim {
                return Err(VerifyError::MappingShape {
                    layer: i,
                    op: 0,
                    detail: format!(
                        "edge features are (f_i, f_j - f_i) pairs: in_ch {} != 2×{dim}",
                        l.in_ch
                    ),
                });
            }
            // Degenerate single-point clouds may yield short neighbor
            // lists; the gather pads the missing rows.
            if m.len() > l.n_out {
                return Err(VerifyError::MapCountMismatch {
                    layer: i,
                    declared: l.n_out,
                    found: m.len(),
                });
            }
            check_bounds(i, m, l.n_in, *n_queries)?;
            *k
        }
        // Set abstraction: FPS selects the centroids, ball query groups.
        [MappingOp::Fps { n_in: fi, n_out: fo }, MappingOp::BallQuery { n_in: bi, n_queries, k }] =>
        {
            if *fi != l.n_in || *fo > *fi {
                return Err(VerifyError::MappingShape {
                    layer: i,
                    op: 0,
                    detail: format!("fps {fi}→{fo} must sample from layer n_in {}", l.n_in),
                });
            }
            if *bi != l.n_in || *n_queries != *fo {
                return Err(VerifyError::MappingShape {
                    layer: i,
                    op: 1,
                    detail: format!(
                        "ball query over {bi} points / {n_queries} queries must match \
                         fps output {fo} over layer n_in {}",
                        l.n_in
                    ),
                });
            }
            if l.n_out != n_queries * k {
                return Err(VerifyError::ShapeInvariant {
                    layer: i,
                    detail: format!(
                        "grouped rows {} != {n_queries} queries × {k} neighbors",
                        l.n_out
                    ),
                });
            }
            check_sa_channels(i, l)?;
            if m.len() != l.n_out {
                return Err(VerifyError::MapCountMismatch {
                    layer: i,
                    declared: l.n_out,
                    found: m.len(),
                });
            }
            check_bounds(i, m, l.n_in, *n_queries)?;
            stack.push(Skip { rows: l.n_in, ch: l.in_ch - 3, kind: SkipKind::Point });
            *k
        }
        // Group-all set abstraction: one neighborhood with every point.
        [] => {
            if l.n_out != l.n_in {
                return Err(VerifyError::ShapeInvariant {
                    layer: i,
                    detail: format!(
                        "group-all abstraction groups every point once: n_out {} != n_in {}",
                        l.n_out, l.n_in
                    ),
                });
            }
            check_sa_channels(i, l)?;
            if m.len() != l.n_out {
                return Err(VerifyError::MapCountMismatch {
                    layer: i,
                    declared: l.n_out,
                    found: m.len(),
                });
            }
            check_bounds(i, m, l.n_in, 1)?;
            stack.push(Skip { rows: l.n_in, ch: l.in_ch - 3, kind: SkipKind::Point });
            l.n_in
        }
        other => {
            return Err(VerifyError::MappingOps {
                layer: i,
                detail: format!(
                    "grouped layers expect [KnnFeature], [Fps, BallQuery] or no ops, got {} ops",
                    other.len()
                ),
            })
        }
    };
    grouped_flow(i, l, k)
}

/// Set abstraction concatenates 3 relative-coordinate channels onto the
/// gathered features, so its input channel count must exceed 3.
fn check_sa_channels(i: usize, l: &LayerTrace) -> Result<(), VerifyError> {
    if l.in_ch <= 3 {
        return Err(VerifyError::ShapeInvariant {
            layer: i,
            detail: format!(
                "set abstraction concatenates 3 coordinate channels: in_ch {} too small",
                l.in_ch
            ),
        });
    }
    Ok(())
}

/// Pool/aggregation consistency of a grouped layer with neighborhood
/// size `k`, yielding its effective output flow.
fn grouped_flow(i: usize, l: &LayerTrace, k: usize) -> Result<Flow, VerifyError> {
    match l.pool_group {
        Some(g) => {
            if l.aggregation != Aggregation::Max {
                return Err(VerifyError::AggregationMismatch {
                    layer: i,
                    expected: Aggregation::Max,
                    found: l.aggregation,
                });
            }
            if g != k || g == 0 || !l.n_out.is_multiple_of(g) {
                return Err(VerifyError::PoolGroup {
                    layer: i,
                    detail: format!(
                        "group {g} must equal the neighborhood size {k} and divide rows {}",
                        l.n_out
                    ),
                });
            }
            Ok(Flow { rows: l.n_out / g, ch: l.out_ch })
        }
        None => {
            if l.aggregation != Aggregation::None {
                return Err(VerifyError::AggregationMismatch {
                    layer: i,
                    expected: Aggregation::None,
                    found: l.aggregation,
                });
            }
            Ok(Flow { rows: l.n_out, ch: l.out_ch })
        }
    }
}

fn verify_dense(i: usize, l: &LayerTrace) -> Result<Flow, VerifyError> {
    if !l.fusable {
        return Err(VerifyError::Fusability { layer: i, expected: true });
    }
    if l.maps.is_some() {
        return Err(VerifyError::UnexpectedMaps { layer: i });
    }
    if !l.mapping.is_empty() {
        return Err(VerifyError::MappingOps {
            layer: i,
            detail: "dense layers run no mapping ops".into(),
        });
    }
    if l.n_in != l.n_out {
        return Err(VerifyError::ShapeInvariant {
            layer: i,
            detail: format!("dense layers are point-wise: n_in {} != n_out {}", l.n_in, l.n_out),
        });
    }
    match l.pool_group {
        Some(g) => {
            if l.aggregation != Aggregation::Max {
                return Err(VerifyError::AggregationMismatch {
                    layer: i,
                    expected: Aggregation::Max,
                    found: l.aggregation,
                });
            }
            if g == 0 || !l.n_out.is_multiple_of(g) {
                return Err(VerifyError::PoolGroup {
                    layer: i,
                    detail: format!("group {g} must divide rows {}", l.n_out),
                });
            }
            Ok(Flow { rows: l.n_out / g, ch: l.out_ch })
        }
        None => {
            if l.aggregation != Aggregation::None {
                return Err(VerifyError::AggregationMismatch {
                    layer: i,
                    expected: Aggregation::None,
                    found: l.aggregation,
                });
            }
            Ok(Flow { rows: l.n_out, ch: l.out_ch })
        }
    }
}

fn verify_interpolate(
    i: usize,
    l: &LayerTrace,
    stack: &mut Vec<Skip>,
) -> Result<Flow, VerifyError> {
    if l.fusable {
        return Err(VerifyError::Fusability { layer: i, expected: false });
    }
    if l.aggregation != Aggregation::Sum {
        return Err(VerifyError::AggregationMismatch {
            layer: i,
            expected: Aggregation::Sum,
            found: l.aggregation,
        });
    }
    if let Some(g) = l.pool_group {
        return Err(VerifyError::PoolGroup {
            layer: i,
            detail: format!("interpolation layers never pool (found group {g})"),
        });
    }
    if l.in_ch != l.out_ch {
        return Err(VerifyError::ShapeInvariant {
            layer: i,
            detail: format!(
                "interpolation preserves channels: in_ch {} != out_ch {}",
                l.in_ch, l.out_ch
            ),
        });
    }
    match (&l.maps, l.mapping.as_slice()) {
        // k-NN interpolation from the coarse level onto the fine one.
        (Some(m), [MappingOp::Knn { n_in, n_queries, k }]) => {
            if m.n_weights() != 1 {
                return Err(VerifyError::WeightGroups {
                    layer: i,
                    expected: 1,
                    found: m.n_weights(),
                });
            }
            if *n_in != l.n_in || *n_queries != l.n_out {
                return Err(VerifyError::MappingShape {
                    layer: i,
                    op: 0,
                    detail: format!(
                        "knn {n_in}→{n_queries} queries != layer domain {}→{}",
                        l.n_in, l.n_out
                    ),
                });
            }
            if *k == 0 || *k > l.n_in {
                return Err(VerifyError::MappingShape {
                    layer: i,
                    op: 0,
                    detail: format!("knn cannot return {k} neighbors from {} inputs", l.n_in),
                });
            }
            if m.len() != n_queries * k {
                return Err(VerifyError::MapCountMismatch {
                    layer: i,
                    declared: n_queries * k,
                    found: m.len(),
                });
            }
            check_bounds(i, m, l.n_in, l.n_out)?;
        }
        // Broadcast of the single global row to every fine point.
        (None, []) => {
            if l.n_in != 1 {
                return Err(VerifyError::ShapeInvariant {
                    layer: i,
                    detail: format!(
                        "broadcast interpolation reads the single global row, n_in is {}",
                        l.n_in
                    ),
                });
            }
        }
        (Some(_), _) => {
            return Err(VerifyError::MappingOps {
                layer: i,
                detail: "map-guided interpolation requires exactly one Knn op".into(),
            })
        }
        (None, _) => {
            return Err(VerifyError::MappingOps {
                layer: i,
                detail: "broadcast interpolation runs no mapping ops".into(),
            })
        }
    }
    let s = stack.pop().ok_or(VerifyError::SkipUnderflow { layer: i })?;
    if s.kind != SkipKind::Point {
        return Err(VerifyError::SkipKindMismatch { layer: i });
    }
    if s.rows != l.n_out {
        return Err(VerifyError::SkipDomainMismatch {
            layer: i,
            skip_rows: s.rows,
            n_out: l.n_out,
        });
    }
    // Skip concatenation onto the interpolated features.
    Ok(Flow { rows: l.n_out, ch: l.out_ch + s.ch })
}

fn verify_pool(i: usize, l: &LayerTrace) -> Result<Flow, VerifyError> {
    if !l.fusable {
        return Err(VerifyError::Fusability { layer: i, expected: true });
    }
    if l.maps.is_some() {
        return Err(VerifyError::UnexpectedMaps { layer: i });
    }
    if !l.mapping.is_empty() {
        return Err(VerifyError::MappingOps {
            layer: i,
            detail: "global pooling runs no mapping ops".into(),
        });
    }
    if l.aggregation != Aggregation::Max {
        return Err(VerifyError::AggregationMismatch {
            layer: i,
            expected: Aggregation::Max,
            found: l.aggregation,
        });
    }
    if l.in_ch != l.out_ch {
        return Err(VerifyError::ShapeInvariant {
            layer: i,
            detail: format!("pooling preserves channels: in_ch {} != out_ch {}", l.in_ch, l.out_ch),
        });
    }
    if l.n_out != 1 {
        return Err(VerifyError::ShapeInvariant {
            layer: i,
            detail: format!("global pooling reduces to one row, n_out is {}", l.n_out),
        });
    }
    if l.pool_group != Some(l.n_in) {
        return Err(VerifyError::PoolGroup {
            layer: i,
            detail: format!(
                "global pooling groups all {} input rows, found {:?}",
                l.n_in, l.pool_group
            ),
        });
    }
    Ok(Flow { rows: 1, ch: l.out_ch })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{zoo, ExecMode, Executor};
    use pointacc_geom::{Point3, PointSet};

    fn cloud(n: usize) -> PointSet {
        (0..n)
            .map(|i| {
                let t = i as f32;
                Point3::new((t * 0.37).sin() * 2.0, (t * 0.61).cos() * 2.0, (t * 0.13).sin())
            })
            .collect()
    }

    fn trace_of(net: &crate::Network, n: usize) -> (TraceKey, NetworkTrace) {
        let out = Executor::new(ExecMode::TraceOnly, 7).run(net, &cloud(n));
        (TraceKey::new(&out.trace.network, 7, 1.0), out.trace)
    }

    #[test]
    fn every_zoo_network_verifies_clean() {
        for bench in zoo::benchmarks() {
            let (key, trace) = trace_of(&bench.network, 256);
            let report =
                verify_trace(&key, &trace).unwrap_or_else(|e| panic!("{}: {e}", bench.notation));
            assert_eq!(report.layers, trace.layers.len());
            assert_eq!(report.fingerprint, trace.fingerprint());
        }
    }

    #[test]
    fn full_mode_traces_verify_too() {
        // Full mode builds EdgeConv graphs in feature space — different
        // edges than TraceOnly, same invariants.
        let out = Executor::new(ExecMode::Full, 3).run(&zoo::dgcnn(), &cloud(96));
        let key = TraceKey::new(&out.trace.network, 3, 1.0);
        verify_trace(&key, &out.trace).expect("full-mode DGCNN trace");
        let out = Executor::new(ExecMode::Full, 3).run(&zoo::mini_minkunet(), &cloud(200));
        let key = TraceKey::new(&out.trace.network, 3, 1.0);
        verify_trace(&key, &out.trace).expect("full-mode MinkUNet trace");
    }

    #[test]
    fn report_counts_tables_and_entries() {
        let (key, trace) = trace_of(&zoo::mini_minkunet(), 200);
        let report = verify_trace(&key, &trace).expect("clean trace");
        let tables = trace.layers.iter().filter(|l| l.maps.is_some()).count();
        assert_eq!(report.tables, tables);
        assert_eq!(report.map_entries, trace.total_maps());
        assert!(report.tables >= 4, "MinkUNet has sparse layers");
    }

    #[test]
    fn empty_trace_is_vacuously_valid() {
        let key = TraceKey::new("empty", 0, 1.0);
        let trace = NetworkTrace::default();
        let report = verify_trace(&key, &trace).expect("no layers, no violations");
        assert_eq!(report.layers, 0);
        assert_eq!(report.fingerprint, trace.fingerprint());
    }

    #[test]
    fn fingerprint_binding_rejects_mismatch() {
        let (key, trace) = trace_of(&zoo::pointnet(), 64);
        let fp = trace.fingerprint();
        verify_with_fingerprint(&key, &trace, fp).expect("matching fingerprint");
        let err = verify_with_fingerprint(&key, &trace, fp ^ 1).unwrap_err();
        assert_eq!(err, VerifyError::FingerprintMismatch { expected: fp ^ 1, found: fp });
    }

    #[test]
    fn out_of_bounds_input_is_named() {
        let (key, mut trace) = trace_of(&zoo::mini_minkunet(), 200);
        let (li, l) =
            trace.layers.iter_mut().enumerate().find(|(_, l)| l.maps.is_some()).expect("has maps");
        let m = l.maps.as_mut().unwrap();
        let mut inputs = m.inputs().to_vec();
        inputs[0] = l.n_in as u32 + 7;
        *m = MapTable::try_from_soa(inputs, m.outputs().to_vec(), m.offsets().to_vec()).unwrap();
        match verify_trace(&key, &trace).unwrap_err() {
            VerifyError::InputIndexOutOfBounds { layer, bound, .. } => {
                assert_eq!(layer, li);
                assert_eq!(bound, trace.layers[li].n_in);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn errors_render_layer_context() {
        let err = VerifyError::RowMismatch { layer: 4, expected: 100, found: 90 };
        assert!(err.to_string().contains("layer 4"));
        let err = VerifyError::InputIndexOutOfBounds {
            layer: 2,
            group: 13,
            entry: 5,
            index: 999,
            bound: 500,
        };
        let s = err.to_string();
        assert!(s.contains("group 13") && s.contains("entry 5") && s.contains("999"), "{s}");
    }
}
