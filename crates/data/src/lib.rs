//! Deterministic synthetic dataset generators for the PointAcc
//! reproduction.
//!
//! The paper evaluates on five datasets (Table 2): ModelNet40 and ShapeNet
//! (single objects), S3DIS (indoor scenes), KITTI and SemanticKITTI
//! (outdoor LiDAR scans). Real datasets are not redistributable inside
//! this repository, so this crate generates *synthetic stand-ins* that
//! match each dataset's load-bearing characteristics: point count, spatial
//! extent, and — critically for the paper's analysis — the sparsity
//! pattern (surface-constrained points, Fig. 5's density profile).
//!
//! All generators are seeded and fully deterministic.
//!
//! # Example
//!
//! ```
//! use pointacc_data::Dataset;
//! let scan = Dataset::SemanticKitti.generate(42, 20_000);
//! assert_eq!(scan.len(), 20_000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod indoor;
pub mod lidar;
mod object;
pub mod stats;

use pointacc_geom::PointSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The five evaluation datasets of paper Table 2.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Dataset {
    /// ModelNet40: CAD objects (classification), ~1k points / object.
    ModelNet40,
    /// ShapeNet: CAD objects (part segmentation), ~2k points / object.
    ShapeNet,
    /// S3DIS: indoor office scans (semantic segmentation).
    S3dis,
    /// KITTI: outdoor LiDAR (detection).
    Kitti,
    /// SemanticKITTI: outdoor LiDAR (semantic segmentation).
    SemanticKitti,
}

impl Dataset {
    /// All datasets, in the order of paper Fig. 5.
    pub const ALL: [Dataset; 5] = [
        Dataset::ModelNet40,
        Dataset::ShapeNet,
        Dataset::S3dis,
        Dataset::Kitti,
        Dataset::SemanticKitti,
    ];

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::ModelNet40 => "ModelNet40",
            Dataset::ShapeNet => "ShapeNet",
            Dataset::S3dis => "S3DIS",
            Dataset::Kitti => "KITTI",
            Dataset::SemanticKitti => "SemanticKITTI",
        }
    }

    /// The point count the paper's networks consume from this dataset
    /// (inputs to PointNet++-style models; SparseConv models voxelize the
    /// full set).
    pub fn default_points(self) -> usize {
        match self {
            Dataset::ModelNet40 => 1024,
            Dataset::ShapeNet => 2048,
            Dataset::S3dis => 4096,
            Dataset::Kitti => 16_384,
            Dataset::SemanticKitti => 80_000,
        }
    }

    /// The voxel size (meters) SparseConv-based networks use on this
    /// dataset (MinkowskiNet: 5 cm indoor, 10 cm outdoor).
    pub fn voxel_size(self) -> f32 {
        match self {
            Dataset::ModelNet40 | Dataset::ShapeNet => 0.02,
            Dataset::S3dis => 0.05,
            Dataset::Kitti | Dataset::SemanticKitti => 0.1,
        }
    }

    /// Generates a deterministic synthetic sample with `n_points` points.
    ///
    /// # Panics
    ///
    /// Panics if `n_points == 0`.
    pub fn generate(self, seed: u64, n_points: usize) -> PointSet {
        assert!(n_points > 0, "cannot generate an empty sample");
        // Mix the dataset tag into the seed so the same seed yields
        // different scenes per dataset.
        let tag = self as u64 + 1;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tag);
        match self {
            Dataset::ModelNet40 => object::generate_object(&mut rng, n_points, false),
            Dataset::ShapeNet => object::generate_object(&mut rng, n_points, true),
            Dataset::S3dis => indoor::generate_room(&mut rng, n_points),
            Dataset::Kitti => lidar::generate_scan(&mut rng, n_points, lidar::ScanProfile::kitti()),
            Dataset::SemanticKitti => {
                lidar::generate_scan(&mut rng, n_points, lidar::ScanProfile::semantic_kitti())
            }
        }
    }

    /// Generates a sample with the dataset's default point count.
    pub fn generate_default(self, seed: u64) -> PointSet {
        self.generate(seed, self.default_points())
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for ds in Dataset::ALL {
            let a = ds.generate(7, 500);
            let b = ds.generate(7, 500);
            assert_eq!(a, b, "{ds} generation must be deterministic");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::S3dis.generate(1, 500);
        let b = Dataset::S3dis.generate(2, 500);
        assert_ne!(a, b);
    }

    #[test]
    fn point_counts_respected() {
        for ds in Dataset::ALL {
            assert_eq!(ds.generate(3, 777).len(), 777);
        }
    }

    #[test]
    fn outdoor_scenes_are_larger_than_objects() {
        let obj = Dataset::ModelNet40.generate(1, 1024);
        let scan = Dataset::SemanticKitti.generate(1, 1024);
        let (omin, omax) = obj.bounds().unwrap();
        let (smin, smax) = scan.bounds().unwrap();
        let oext = omax.sub(omin).norm();
        let sext = smax.sub(smin).norm();
        assert!(sext > 10.0 * oext, "LiDAR extent {sext} should dwarf object extent {oext}");
    }
}
