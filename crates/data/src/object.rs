//! Single-object generators standing in for ModelNet40 / ShapeNet.
//!
//! Objects are unions of randomized primitive surfaces (box, sphere,
//! cylinder) normalized to the unit sphere — the same normalization the
//! real datasets receive before being fed to PointNet-family networks.

use pointacc_geom::{Point3, PointSet};
use rand::rngs::StdRng;
use rand::Rng;

/// One primitive surface a sample point can land on.
#[derive(Clone, Copy, Debug)]
enum Primitive {
    /// Axis-aligned box surface: center + half extents.
    Box { c: Point3, h: Point3 },
    /// Sphere surface: center + radius.
    Sphere { c: Point3, r: f32 },
    /// Upright cylinder wall: center, radius, half height.
    Cylinder { c: Point3, r: f32, hh: f32 },
}

impl Primitive {
    fn area(&self) -> f32 {
        match *self {
            Primitive::Box { h, .. } => 8.0 * (h.x * h.y + h.y * h.z + h.x * h.z),
            Primitive::Sphere { r, .. } => 4.0 * std::f32::consts::PI * r * r,
            Primitive::Cylinder { r, hh, .. } => 2.0 * std::f32::consts::PI * r * 2.0 * hh,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> Point3 {
        match *self {
            Primitive::Box { c, h } => sample_box_surface(rng, c, h),
            Primitive::Sphere { c, r } => {
                // Uniform direction via normalized Gaussian triple.
                let v = loop {
                    let v = Point3::new(
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    );
                    let n = v.norm();
                    if n > 1e-3 && n <= 1.0 {
                        break v.scale(1.0 / n);
                    }
                };
                c.add(v.scale(r))
            }
            Primitive::Cylinder { c, r, hh } => {
                let theta = rng.gen_range(0.0..std::f32::consts::TAU);
                let z = rng.gen_range(-hh..hh);
                c.add(Point3::new(r * theta.cos(), r * theta.sin(), z))
            }
        }
    }
}

fn sample_box_surface(rng: &mut StdRng, c: Point3, h: Point3) -> Point3 {
    // Pick a face weighted by area, then sample it uniformly.
    let ax = h.y * h.z; // ±x faces
    let ay = h.x * h.z;
    let az = h.x * h.y;
    let total = ax + ay + az;
    let pick = rng.gen_range(0.0..total);
    let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    let (dx, dy, dz) = if pick < ax {
        (sign * h.x, rng.gen_range(-h.y..h.y), rng.gen_range(-h.z..h.z))
    } else if pick < ax + ay {
        (rng.gen_range(-h.x..h.x), sign * h.y, rng.gen_range(-h.z..h.z))
    } else {
        (rng.gen_range(-h.x..h.x), rng.gen_range(-h.y..h.y), sign * h.z)
    };
    c.add(Point3::new(dx, dy, dz))
}

/// Generates one object as `n` surface samples from a random union of
/// 2–5 primitives, normalized to fit the unit sphere. `part_structure`
/// biases toward articulated multi-part shapes (ShapeNet-like) rather than
/// compact ones (ModelNet-like).
pub fn generate_object(rng: &mut StdRng, n: usize, part_structure: bool) -> PointSet {
    let n_prims = if part_structure { rng.gen_range(3..=5) } else { rng.gen_range(2..=4) };
    let spread = if part_structure { 0.6 } else { 0.3 };
    let mut prims = Vec::with_capacity(n_prims);
    for _ in 0..n_prims {
        let c = Point3::new(
            rng.gen_range(-spread..spread),
            rng.gen_range(-spread..spread),
            rng.gen_range(-spread..spread),
        );
        let prim = match rng.gen_range(0..3) {
            0 => Primitive::Box {
                c,
                h: Point3::new(
                    rng.gen_range(0.1..0.4),
                    rng.gen_range(0.1..0.4),
                    rng.gen_range(0.1..0.4),
                ),
            },
            1 => Primitive::Sphere { c, r: rng.gen_range(0.1..0.35) },
            _ => Primitive::Cylinder {
                c,
                r: rng.gen_range(0.05..0.25),
                hh: rng.gen_range(0.1..0.45),
            },
        };
        prims.push(prim);
    }
    let areas: Vec<f32> = prims.iter().map(Primitive::area).collect();
    let total_area: f32 = areas.iter().sum();

    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let mut pick = rng.gen_range(0.0..total_area);
        let mut idx = 0;
        for (i, a) in areas.iter().enumerate() {
            if pick < *a {
                idx = i;
                break;
            }
            pick -= a;
        }
        points.push(prims[idx].sample(rng));
    }

    // Normalize to the unit sphere (standard ModelNet preprocessing).
    let centroid = points.iter().fold(Point3::ORIGIN, |acc, p| acc.add(*p)).scale(1.0 / n as f32);
    let max_r = points.iter().map(|p| p.sub(centroid).norm()).fold(0.0f32, f32::max).max(1e-6);
    let points = points.into_iter().map(|p| p.sub(centroid).scale(1.0 / max_r)).collect();
    PointSet::from_points(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn object_fits_unit_sphere() {
        let mut rng = StdRng::seed_from_u64(3);
        let obj = generate_object(&mut rng, 2048, false);
        for p in obj.points() {
            assert!(p.norm() <= 1.0 + 1e-4);
        }
    }

    #[test]
    fn object_is_surface_like() {
        // Surface samples should voxelize to far fewer occupied cells than
        // a solid would, but more than a degenerate point.
        let mut rng = StdRng::seed_from_u64(9);
        let obj = generate_object(&mut rng, 4096, true);
        let (vc, _) = obj.voxelize(0.05);
        let occupancy = vc.len() as f64;
        assert!(occupancy > 100.0, "object collapsed: {occupancy}");
        assert!(vc.density() < 0.5, "object too dense: {}", vc.density());
    }
}
