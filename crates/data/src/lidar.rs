//! Rotating-LiDAR scan generator standing in for KITTI / SemanticKITTI.
//!
//! A Velodyne HDL-64E sweeps 64 laser beams (elevation −25°…+3°) through
//! 360° of azimuth and records the first surface each ray hits. The
//! generator ray-casts that pattern against a synthetic street scene
//! (ground plane, building facades, parked boxes), which reproduces the
//! signature LiDAR sparsity: concentric ground rings that thin with range
//! and dense vertical structure at obstacles — density < 1e-4 when
//! voxelized over the full extent (paper Fig. 5).

use pointacc_geom::{Point3, PointSet};
use rand::rngs::StdRng;
use rand::Rng;

/// Scan parameters for one LiDAR configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScanProfile {
    /// Number of laser beams (vertical channels).
    pub beams: usize,
    /// Lowest beam elevation, radians.
    pub elev_min: f32,
    /// Highest beam elevation, radians.
    pub elev_max: f32,
    /// Maximum usable range, meters.
    pub max_range: f32,
    /// Sensor height above ground, meters.
    pub sensor_height: f32,
}

impl ScanProfile {
    /// HDL-64E profile used by the KITTI detection benchmark.
    pub fn kitti() -> Self {
        ScanProfile {
            beams: 64,
            elev_min: -24.9f32.to_radians(),
            elev_max: 2.0f32.to_radians(),
            max_range: 80.0,
            sensor_height: 1.73,
        }
    }

    /// Same sensor, SemanticKITTI-style full sweeps.
    pub fn semantic_kitti() -> Self {
        ScanProfile { max_range: 90.0, ..Self::kitti() }
    }
}

/// A simple street scene: obstacles are axis-aligned boxes, plus two long
/// building facades and the ground plane.
struct Scene {
    /// Boxes: (center, half-extents).
    boxes: Vec<(Point3, Point3)>,
}

impl Scene {
    fn random(rng: &mut StdRng) -> Scene {
        let mut boxes = Vec::new();
        // Parked / driving cars along the road.
        let n_cars = rng.gen_range(8..24);
        for _ in 0..n_cars {
            let x = rng.gen_range(-60.0..60.0f32);
            let y = if rng.gen_bool(0.5) {
                rng.gen_range(2.5..7.0f32)
            } else {
                rng.gen_range(-7.0..-2.5f32)
            };
            boxes.push((
                Point3::new(x, y, 0.8),
                Point3::new(rng.gen_range(1.8..2.4), rng.gen_range(0.8..1.1), 0.8),
            ));
        }
        // Building facades: long thin boxes on both sides.
        let left = rng.gen_range(9.0..18.0f32);
        let right = rng.gen_range(9.0..18.0f32);
        boxes.push((Point3::new(0.0, left + 0.5, 4.0), Point3::new(80.0, 0.5, 4.0)));
        boxes.push((Point3::new(0.0, -right - 0.5, 4.0), Point3::new(80.0, 0.5, 4.0)));
        // A few poles / trees.
        for _ in 0..rng.gen_range(4..10) {
            let x = rng.gen_range(-50.0..50.0f32);
            let y = rng.gen_range(-8.0..8.0f32);
            boxes.push((Point3::new(x, y, 2.5), Point3::new(0.15, 0.15, 2.5)));
        }
        Scene { boxes }
    }

    /// Distance along `dir` (unit) from `origin` to the first hit, if any.
    fn raycast(&self, origin: Point3, dir: Point3, max_t: f32) -> Option<f32> {
        let mut best = max_t;
        let mut hit = false;
        // Ground plane z = 0.
        if dir.z < -1e-6 {
            let t = -origin.z / dir.z;
            if t > 0.1 && t < best {
                best = t;
                hit = true;
            }
        }
        for &(c, h) in &self.boxes {
            if let Some(t) = ray_box(origin, dir, c, h) {
                if t > 0.1 && t < best {
                    best = t;
                    hit = true;
                }
            }
        }
        hit.then_some(best)
    }
}

/// Slab-method ray / axis-aligned-box intersection, returning the entry
/// distance.
fn ray_box(o: Point3, d: Point3, c: Point3, h: Point3) -> Option<f32> {
    let mut tmin = f32::NEG_INFINITY;
    let mut tmax = f32::INFINITY;
    for (oc, dc, cc, hc) in [(o.x, d.x, c.x, h.x), (o.y, d.y, c.y, h.y), (o.z, d.z, c.z, h.z)] {
        if dc.abs() < 1e-8 {
            if (oc - cc).abs() > hc {
                return None;
            }
        } else {
            let t1 = (cc - hc - oc) / dc;
            let t2 = (cc + hc - oc) / dc;
            let (lo, hi) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
            tmin = tmin.max(lo);
            tmax = tmax.min(hi);
            if tmin > tmax {
                return None;
            }
        }
    }
    (tmax > 0.0).then_some(tmin.max(0.0))
}

/// Generates a LiDAR sweep with exactly `n` return points.
///
/// Azimuth resolution is chosen so the full sweep yields roughly `n`
/// returns; rays that miss everything (sky) produce no point, so the sweep
/// is re-run with more azimuth steps until `n` points exist, then
/// truncated deterministically.
pub fn generate_scan(rng: &mut StdRng, n: usize, profile: ScanProfile) -> PointSet {
    let scene = Scene::random(rng);
    let origin = Point3::new(0.0, 0.0, profile.sensor_height);
    let noise = 0.02f32;

    // Start with an azimuth count sized for ~70 % hit rate and grow if
    // needed.
    let mut azimuth_steps = (n as f32 / (profile.beams as f32 * 0.6)).ceil() as usize;
    loop {
        let mut points = Vec::with_capacity(n + profile.beams);
        'sweep: for a in 0..azimuth_steps {
            let az = a as f32 / azimuth_steps as f32 * std::f32::consts::TAU;
            for b in 0..profile.beams {
                let elev = profile.elev_min
                    + (profile.elev_max - profile.elev_min) * b as f32
                        / (profile.beams - 1).max(1) as f32;
                let dir = Point3::new(elev.cos() * az.cos(), elev.cos() * az.sin(), elev.sin());
                if let Some(t) = scene.raycast(origin, dir, profile.max_range) {
                    let jitter = rng.gen_range(-noise..noise);
                    points.push(origin.add(dir.scale(t + jitter)));
                    if points.len() == n {
                        break 'sweep;
                    }
                }
            }
        }
        if points.len() >= n {
            points.truncate(n);
            return PointSet::from_points(points);
        }
        azimuth_steps = azimuth_steps * 3 / 2 + 8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ray_box_hits_center() {
        let t = ray_box(
            Point3::new(-5.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::ORIGIN,
            Point3::new(1.0, 1.0, 1.0),
        );
        assert!((t.unwrap() - 4.0).abs() < 1e-5);
    }

    #[test]
    fn ray_box_misses_offset() {
        let t = ray_box(
            Point3::new(-5.0, 3.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::ORIGIN,
            Point3::new(1.0, 1.0, 1.0),
        );
        assert!(t.is_none());
    }

    #[test]
    fn scan_is_ultra_sparse() {
        let mut rng = StdRng::seed_from_u64(21);
        let scan = generate_scan(&mut rng, 30_000, ScanProfile::semantic_kitti());
        let (vc, _) = scan.voxelize(0.1);
        // Outdoor scenes reach < 1e-3 density even at coarse voxels.
        assert!(vc.density() < 1e-2, "outdoor scan too dense: {}", vc.density());
        // Extent should span tens of meters.
        let (min, max) = scan.bounds().unwrap();
        assert!(max.sub(min).norm() > 40.0);
    }

    #[test]
    fn scan_points_above_or_on_ground() {
        let mut rng = StdRng::seed_from_u64(2);
        let scan = generate_scan(&mut rng, 5_000, ScanProfile::kitti());
        for p in scan.points() {
            assert!(p.z > -0.5, "point below ground: {p}");
        }
    }
}
