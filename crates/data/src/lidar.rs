//! Rotating-LiDAR scan generator standing in for KITTI / SemanticKITTI.
//!
//! A Velodyne HDL-64E sweeps 64 laser beams (elevation −25°…+3°) through
//! 360° of azimuth and records the first surface each ray hits. The
//! generator ray-casts that pattern against a synthetic street scene
//! (ground plane, building facades, parked boxes), which reproduces the
//! signature LiDAR sparsity: concentric ground rings that thin with range
//! and dense vertical structure at obstacles — density < 1e-4 when
//! voxelized over the full extent (paper Fig. 5).

use pointacc_geom::index::apply_point_delta;
use pointacc_geom::{Point3, PointSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Closest return the sensor reports, meters ([`Scene::raycast`] rejects
/// nearer hits, and range jitter is clamped to stay strictly beyond it).
const MIN_RANGE: f32 = 0.1;

/// Per-return range noise amplitude, meters (1σ-ish jitter applied along
/// the ray).
const RANGE_NOISE: f32 = 0.02;

/// Expected fraction of rays that hit a surface in a typical scene. The
/// single source of truth for azimuth-count sizing: [`generate_scan`]
/// starts from it and regrows on shortfall, [`FrameStream`] sizes its
/// fixed azimuth grid with it.
const EXPECTED_HIT_RATE: f32 = 0.6;

/// Scan parameters for one LiDAR configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScanProfile {
    /// Number of laser beams (vertical channels).
    pub beams: usize,
    /// Lowest beam elevation, radians.
    pub elev_min: f32,
    /// Highest beam elevation, radians.
    pub elev_max: f32,
    /// Maximum usable range, meters.
    pub max_range: f32,
    /// Sensor height above ground, meters.
    pub sensor_height: f32,
}

impl ScanProfile {
    /// HDL-64E profile used by the KITTI detection benchmark.
    pub fn kitti() -> Self {
        ScanProfile {
            beams: 64,
            elev_min: -24.9f32.to_radians(),
            elev_max: 2.0f32.to_radians(),
            max_range: 80.0,
            sensor_height: 1.73,
        }
    }

    /// Same sensor, SemanticKITTI-style full sweeps.
    pub fn semantic_kitti() -> Self {
        ScanProfile { max_range: 90.0, ..Self::kitti() }
    }
}

/// A simple street scene: obstacles are axis-aligned boxes, plus two long
/// building facades and the ground plane.
struct Scene {
    /// Boxes: (center, half-extents).
    boxes: Vec<(Point3, Point3)>,
}

impl Scene {
    fn random(rng: &mut StdRng) -> Scene {
        let mut boxes = Vec::new();
        // Parked / driving cars along the road.
        let n_cars = rng.gen_range(8..24);
        for _ in 0..n_cars {
            let x = rng.gen_range(-60.0..60.0f32);
            let y = if rng.gen_bool(0.5) {
                rng.gen_range(2.5..7.0f32)
            } else {
                rng.gen_range(-7.0..-2.5f32)
            };
            boxes.push((
                Point3::new(x, y, 0.8),
                Point3::new(rng.gen_range(1.8..2.4), rng.gen_range(0.8..1.1), 0.8),
            ));
        }
        // Building facades: long thin boxes on both sides.
        let left = rng.gen_range(9.0..18.0f32);
        let right = rng.gen_range(9.0..18.0f32);
        boxes.push((Point3::new(0.0, left + 0.5, 4.0), Point3::new(80.0, 0.5, 4.0)));
        boxes.push((Point3::new(0.0, -right - 0.5, 4.0), Point3::new(80.0, 0.5, 4.0)));
        // A few poles / trees.
        for _ in 0..rng.gen_range(4..10) {
            let x = rng.gen_range(-50.0..50.0f32);
            let y = rng.gen_range(-8.0..8.0f32);
            boxes.push((Point3::new(x, y, 2.5), Point3::new(0.15, 0.15, 2.5)));
        }
        Scene { boxes }
    }

    /// Distance along `dir` (unit) from `origin` to the first hit, if any.
    fn raycast(&self, origin: Point3, dir: Point3, max_t: f32) -> Option<f32> {
        let mut best = max_t;
        let mut hit = false;
        // Ground plane z = 0.
        if dir.z < -1e-6 {
            let t = -origin.z / dir.z;
            if t > 0.1 && t < best {
                best = t;
                hit = true;
            }
        }
        for &(c, h) in &self.boxes {
            if let Some(t) = ray_box(origin, dir, c, h) {
                if t > 0.1 && t < best {
                    best = t;
                    hit = true;
                }
            }
        }
        hit.then_some(best)
    }
}

/// Slab-method ray / axis-aligned-box intersection, returning the entry
/// distance.
fn ray_box(o: Point3, d: Point3, c: Point3, h: Point3) -> Option<f32> {
    let mut tmin = f32::NEG_INFINITY;
    let mut tmax = f32::INFINITY;
    for (oc, dc, cc, hc) in [(o.x, d.x, c.x, h.x), (o.y, d.y, c.y, h.y), (o.z, d.z, c.z, h.z)] {
        if dc.abs() < 1e-8 {
            if (oc - cc).abs() > hc {
                return None;
            }
        } else {
            let t1 = (cc - hc - oc) / dc;
            let t2 = (cc + hc - oc) / dc;
            let (lo, hi) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
            tmin = tmin.max(lo);
            tmax = tmax.min(hi);
            if tmin > tmax {
                return None;
            }
        }
    }
    (tmax > 0.0).then_some(tmin.max(0.0))
}

/// Beam direction for one (azimuth, beam) pair of a profile's sweep
/// pattern: azimuth from a uniform grid of `azimuth_steps` columns,
/// elevation interpolated across the beam stack.
fn beam_dir(profile: ScanProfile, azimuth_steps: usize, col: usize, beam: usize) -> Point3 {
    let az = col as f32 / azimuth_steps as f32 * std::f32::consts::TAU;
    let elev = profile.elev_min
        + (profile.elev_max - profile.elev_min) * beam as f32 / (profile.beams - 1).max(1) as f32;
    Point3::new(elev.cos() * az.cos(), elev.cos() * az.sin(), elev.sin())
}

/// Applies range jitter to a raycast hit, clamped so the jittered return
/// stays physical: strictly beyond [`MIN_RANGE`], within
/// `profile.max_range`, and never past the ground plane along a
/// downward ray (raw `t + jitter` used to push ground returns below
/// z = 0 and far returns beyond the sensor's usable range).
fn jittered_range(t: f32, jitter: f32, origin: Point3, dir: Point3, max_range: f32) -> f32 {
    let mut tj = (t + jitter).clamp(MIN_RANGE + 1e-4, max_range);
    if dir.z < -1e-6 {
        // Ground intersection distance: the farthest a downward ray can
        // physically travel.
        tj = tj.min(-origin.z / dir.z);
    }
    tj
}

/// Generates a LiDAR sweep with exactly `n` return points.
///
/// Azimuth resolution is chosen so the full sweep yields roughly `n`
/// returns; rays that miss everything (sky) produce no point, so the sweep
/// is re-run with more azimuth steps until `n` points exist, then
/// truncated deterministically.
pub fn generate_scan(rng: &mut StdRng, n: usize, profile: ScanProfile) -> PointSet {
    let scene = Scene::random(rng);
    let origin = Point3::new(0.0, 0.0, profile.sensor_height);

    // Start with an azimuth count sized for [`EXPECTED_HIT_RATE`] and
    // grow if needed.
    let mut azimuth_steps = (n as f32 / (profile.beams as f32 * EXPECTED_HIT_RATE)).ceil() as usize;
    loop {
        let mut points = Vec::with_capacity(n + profile.beams);
        'sweep: for a in 0..azimuth_steps {
            for b in 0..profile.beams {
                let dir = beam_dir(profile, azimuth_steps, a, b);
                if let Some(t) = scene.raycast(origin, dir, profile.max_range) {
                    let jitter = rng.gen_range(-RANGE_NOISE..RANGE_NOISE);
                    let tj = jittered_range(t, jitter, origin, dir, profile.max_range);
                    points.push(origin.add(dir.scale(tj)));
                    if points.len() == n {
                        break 'sweep;
                    }
                }
            }
        }
        if points.len() >= n {
            points.truncate(n);
            return PointSet::from_points(points);
        }
        azimuth_steps = azimuth_steps * 3 / 2 + 8;
    }
}

/// Sentinel for a ray slot with no current return.
const NO_RETURN: u32 = u32::MAX;

/// One frame of a [`FrameStream`]: the full registered cloud plus the
/// exact delta from the previous frame.
///
/// `removed` holds positions **in the previous frame's point array**;
/// `inserted` holds the new points. Applying
/// [`pointacc_geom::index::apply_point_delta`] (or
/// [`pointacc_geom::index::GridIndex::apply_delta`]) with this delta to
/// the previous frame's array reproduces `points` bit-exactly — the
/// stream maintains its own state through that same transformation.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Frame number, starting at 0.
    pub index: usize,
    /// The frame's full point cloud (ego-registered world frame).
    pub points: PointSet,
    /// Positions removed from the previous frame's array (unsorted
    /// original slot-scan order; positions are distinct).
    pub removed: Vec<u32>,
    /// Points inserted this frame, in insertion order.
    pub inserted: Vec<Point3>,
}

impl Frame {
    /// Fraction of this frame's points carried over unchanged from the
    /// previous frame (1.0 for an identical frame, 0.0 for a cold one).
    pub fn overlap(&self) -> f32 {
        if self.points.is_empty() {
            return 0.0;
        }
        1.0 - self.inserted.len() as f32 / self.points.len() as f32
    }
}

/// A deterministic stream of overlapping LiDAR sweeps: one persistent
/// [`Scene`] traversed with per-frame ego motion, re-raycasting only a
/// bounded rotating window of azimuth columns each frame.
///
/// Points are kept in the ego-registered world frame (as a
/// SLAM-registered pipeline would feed them), so the untouched columns'
/// returns are **bit-identical** across frames — consecutive sweeps
/// overlap heavily, and each [`FrameStream::next_frame`] reports the
/// exact churn as a remove/insert delta whose layout matches
/// [`apply_point_delta`]. With motion and churn set to zero (a stopped
/// ego, [`FrameStream::set_motion`]) frames repeat bit-identically,
/// which is what lets the serving layer's exact-match reuse path fire.
///
/// Everything (scene, jitter, churn schedule) derives from the seed, so
/// two streams with equal parameters produce equal frame sequences.
pub struct FrameStream {
    rng: StdRng,
    profile: ScanProfile,
    scene: Scene,
    azimuth_steps: usize,
    /// Sensor x-position; advances by `ego_step` per frame.
    ego_x: f32,
    ego_step: f32,
    /// Azimuth columns re-raycast per frame.
    churn_cols: usize,
    /// Rotating churn cursor (next column to refresh).
    next_col: usize,
    /// Ray slot (`col * beams + beam`) → current point position, or
    /// [`NO_RETURN`].
    slot_point: Vec<u32>,
    /// Point position → ray slot (inverse of `slot_point`).
    point_slot: Vec<u32>,
    points: Vec<Point3>,
    frame: usize,
}

impl FrameStream {
    /// Creates a stream whose frames hold roughly `points_hint` returns.
    /// Defaults: 0.5 m of ego motion per frame and ~10 % of azimuth
    /// columns re-raycast per frame; tune with
    /// [`FrameStream::set_motion`].
    pub fn new(seed: u64, points_hint: usize, profile: ScanProfile) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_F4A3_17EA_0001);
        let scene = Scene::random(&mut rng);
        let azimuth_steps = (points_hint as f32 / (profile.beams as f32 * EXPECTED_HIT_RATE))
            .ceil()
            .max(1.0) as usize;
        FrameStream {
            rng,
            profile,
            scene,
            azimuth_steps,
            ego_x: 0.0,
            ego_step: 0.5,
            churn_cols: (azimuth_steps / 10).max(1),
            next_col: 0,
            slot_point: vec![NO_RETURN; azimuth_steps * profile.beams],
            point_slot: Vec::new(),
            points: Vec::new(),
            frame: 0,
        }
    }

    /// Sets the per-frame ego motion (meters) and churn window (azimuth
    /// columns re-raycast per frame, capped at the column count). Zero
    /// churn freezes the geometry: subsequent frames are bit-identical.
    pub fn set_motion(&mut self, ego_step: f32, churn_cols: usize) {
        self.ego_step = ego_step;
        self.churn_cols = churn_cols.min(self.azimuth_steps);
    }

    /// Number of azimuth columns in the sweep pattern.
    pub fn azimuth_steps(&self) -> usize {
        self.azimuth_steps
    }

    /// Produces the next frame. Frame 0 raycasts the full sweep from
    /// the initial pose (its delta inserts everything); each later frame
    /// advances the ego pose and re-raycasts only the churn window.
    pub fn next_frame(&mut self) -> Frame {
        let (cols, full) = if self.frame == 0 {
            ((0..self.azimuth_steps).collect::<Vec<_>>(), true)
        } else {
            self.ego_x += self.ego_step;
            let cols = (0..self.churn_cols)
                .map(|i| (self.next_col + i) % self.azimuth_steps)
                .collect::<Vec<_>>();
            (cols, false)
        };
        if !full {
            self.next_col = (self.next_col + self.churn_cols) % self.azimuth_steps.max(1);
        }

        let origin = Point3::new(self.ego_x, 0.0, self.profile.sensor_height);
        let mut removed: Vec<u32> = Vec::new();
        let mut inserted: Vec<Point3> = Vec::new();
        let mut ins_slots: Vec<u32> = Vec::new();
        for &col in &cols {
            for b in 0..self.profile.beams {
                let slot = col * self.profile.beams + b;
                if self.slot_point[slot] != NO_RETURN {
                    removed.push(self.slot_point[slot]);
                    self.slot_point[slot] = NO_RETURN;
                }
                let dir = beam_dir(self.profile, self.azimuth_steps, col, b);
                if let Some(t) = self.scene.raycast(origin, dir, self.profile.max_range) {
                    let jitter = self.rng.gen_range(-RANGE_NOISE..RANGE_NOISE);
                    let tj = jittered_range(t, jitter, origin, dir, self.profile.max_range);
                    inserted.push(origin.add(dir.scale(tj)));
                    ins_slots.push(slot as u32);
                }
            }
        }

        // Apply the delta to the point array and mirror the same layout
        // onto the slot maps: holes (ascending) take the inserts in
        // order, spill appends, relocated tail survivors follow the
        // returned moves.
        let mut holes = removed.clone();
        holes.sort_unstable();
        let old_n = self.points.len();
        let moves = apply_point_delta(&mut self.points, &removed, &inserted);
        let n_new = self.points.len();
        let filled = holes.len().min(ins_slots.len());
        for (&h, &s) in holes.iter().zip(ins_slots.iter()) {
            self.point_slot[h as usize] = s;
        }
        self.point_slot.extend_from_slice(&ins_slots[filled..]);
        for &(from, to) in &moves {
            self.point_slot[to as usize] = self.point_slot[from as usize];
        }
        self.point_slot.truncate(n_new);
        debug_assert_eq!(self.point_slot.len(), self.points.len());
        // Refresh the forward map for every position that changed hands.
        for &h in &holes[..filled] {
            self.slot_point[self.point_slot[h as usize] as usize] = h;
        }
        for i in old_n - holes.len() + filled..n_new {
            self.slot_point[self.point_slot[i] as usize] = i as u32;
        }
        for &(_, to) in &moves {
            self.slot_point[self.point_slot[to as usize] as usize] = to;
        }

        let frame = Frame {
            index: self.frame,
            points: PointSet::from_points(self.points.clone()),
            removed,
            inserted,
        };
        self.frame += 1;
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ray_box_hits_center() {
        let t = ray_box(
            Point3::new(-5.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::ORIGIN,
            Point3::new(1.0, 1.0, 1.0),
        );
        assert!((t.unwrap() - 4.0).abs() < 1e-5);
    }

    #[test]
    fn ray_box_misses_offset() {
        let t = ray_box(
            Point3::new(-5.0, 3.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::ORIGIN,
            Point3::new(1.0, 1.0, 1.0),
        );
        assert!(t.is_none());
    }

    #[test]
    fn scan_is_ultra_sparse() {
        let mut rng = StdRng::seed_from_u64(21);
        let scan = generate_scan(&mut rng, 30_000, ScanProfile::semantic_kitti());
        let (vc, _) = scan.voxelize(0.1);
        // Outdoor scenes reach < 1e-3 density even at coarse voxels.
        assert!(vc.density() < 1e-2, "outdoor scan too dense: {}", vc.density());
        // Extent should span tens of meters.
        let (min, max) = scan.bounds().unwrap();
        assert!(max.sub(min).norm() > 40.0);
    }

    #[test]
    fn scan_points_above_or_on_ground() {
        let mut rng = StdRng::seed_from_u64(2);
        let profile = ScanProfile::kitti();
        let scan = generate_scan(&mut rng, 5_000, profile);
        let origin = Point3::new(0.0, 0.0, profile.sensor_height);
        for p in scan.points() {
            // Jitter is clamped along-ray, so no return lands below the
            // ground plane (small fp slack) …
            assert!(p.z >= -2.0 * RANGE_NOISE, "point below ground: {p}");
            // … or beyond the sensor's usable range.
            let range = p.sub(origin).norm();
            assert!(
                range <= profile.max_range + 2.0 * RANGE_NOISE,
                "return beyond max range: {range} at {p}"
            );
        }
    }

    #[test]
    fn frame_stream_is_deterministic_per_seed() {
        let mut a = FrameStream::new(7, 4_000, ScanProfile::kitti());
        let mut b = FrameStream::new(7, 4_000, ScanProfile::kitti());
        for _ in 0..4 {
            let fa = a.next_frame();
            let fb = b.next_frame();
            assert_eq!(fa.points.points(), fb.points.points());
            assert_eq!(fa.removed, fb.removed);
        }
        let mut c = FrameStream::new(8, 4_000, ScanProfile::kitti());
        c.next_frame();
        assert_ne!(a.next_frame().points.points(), c.next_frame().points.points());
    }

    #[test]
    fn frame_stream_delta_reproduces_frames() {
        let mut stream = FrameStream::new(3, 5_000, ScanProfile::semantic_kitti());
        let mut mirror: Vec<Point3> = Vec::new();
        for _ in 0..6 {
            let frame = stream.next_frame();
            apply_point_delta(&mut mirror, &frame.removed, &frame.inserted);
            assert_eq!(
                mirror,
                frame.points.points(),
                "frame {} delta does not reproduce the cloud",
                frame.index
            );
        }
    }

    #[test]
    fn frame_stream_overlaps_heavily_and_freezes_on_zero_churn() {
        let mut stream = FrameStream::new(11, 5_000, ScanProfile::kitti());
        let first = stream.next_frame();
        assert_eq!(first.overlap(), 0.0, "frame 0 is cold");
        let second = stream.next_frame();
        // Default churn refreshes ~10 % of columns, so ≥ 3/4 of the
        // cloud carries over bit-identically.
        assert!(second.overlap() > 0.75, "overlap too low: {}", second.overlap());
        // Zero motion + zero churn: frames repeat exactly, empty delta.
        stream.set_motion(0.0, 0);
        let frozen = stream.next_frame();
        assert!(frozen.removed.is_empty() && frozen.inserted.is_empty());
        assert_eq!(frozen.points.points(), second.points.points());
    }

    #[test]
    fn frame_stream_points_stay_physical() {
        let profile = ScanProfile::kitti();
        let mut stream = FrameStream::new(5, 3_000, profile);
        for _ in 0..3 {
            let frame = stream.next_frame();
            for p in frame.points.points() {
                assert!(p.z >= -2.0 * RANGE_NOISE, "point below ground: {p}");
            }
        }
    }
}
