//! Indoor room generator standing in for S3DIS.
//!
//! An S3DIS room is dominated by large planar structures (floor, ceiling,
//! walls) plus box-like furniture. The generator reproduces that geometry
//! so the voxelized sparsity pattern — thin 2-D shells in a 3-D volume,
//! density < 1e-2 (paper Fig. 5) — matches the real dataset.

use pointacc_geom::{Point3, PointSet};
use rand::rngs::StdRng;
use rand::Rng;

/// Generates one office-like room scan with `n` points.
///
/// Room dimensions are sampled in the 4–10 m range with a ~3 m ceiling,
/// matching typical S3DIS areas. Around 60 % of points fall on the room
/// shell (floor/ceiling/walls) and 40 % on furniture boxes.
pub fn generate_room(rng: &mut StdRng, n: usize) -> PointSet {
    let lx = rng.gen_range(4.0..10.0f32);
    let ly = rng.gen_range(4.0..10.0f32);
    let lz = rng.gen_range(2.6..3.4f32);

    // Furniture: boxes resting on the floor.
    let n_furniture = rng.gen_range(5..14);
    let mut furniture = Vec::with_capacity(n_furniture);
    for _ in 0..n_furniture {
        let hw = rng.gen_range(0.2..1.0f32);
        let hd = rng.gen_range(0.2..1.0f32);
        let h = rng.gen_range(0.4..1.6f32);
        let cx = rng.gen_range(hw..lx - hw);
        let cy = rng.gen_range(hd..ly - hd);
        furniture.push((Point3::new(cx, cy, h / 2.0), Point3::new(hw, hd, h / 2.0)));
    }

    // Surface areas for weighting.
    let shell_area = 2.0 * lx * ly + 2.0 * lx * lz + 2.0 * ly * lz;
    let furn_area: f32 =
        furniture.iter().map(|(_, h)| 8.0 * (h.x * h.y + h.y * h.z + h.x * h.z)).sum();

    let noise = 0.01f32;
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let on_shell = rng.gen_range(0.0..shell_area + furn_area) < shell_area;
        let p = if on_shell {
            sample_room_shell(rng, lx, ly, lz)
        } else {
            let (c, h) = furniture[rng.gen_range(0..furniture.len())];
            sample_box(rng, c, h)
        };
        points.push(Point3::new(
            p.x + rng.gen_range(-noise..noise),
            p.y + rng.gen_range(-noise..noise),
            p.z + rng.gen_range(-noise..noise),
        ));
    }
    PointSet::from_points(points)
}

fn sample_room_shell(rng: &mut StdRng, lx: f32, ly: f32, lz: f32) -> Point3 {
    let a_floor = lx * ly;
    let a_wall_x = lx * lz;
    let a_wall_y = ly * lz;
    let total = 2.0 * (a_floor + a_wall_x + a_wall_y);
    let mut pick = rng.gen_range(0.0..total);
    // Floor, ceiling, 2 × x-walls, 2 × y-walls.
    for (area, face) in
        [(a_floor, 0), (a_floor, 1), (a_wall_x, 2), (a_wall_x, 3), (a_wall_y, 4), (a_wall_y, 5)]
    {
        if pick < area {
            let u = rng.gen_range(0.0..1.0f32);
            let v = rng.gen_range(0.0..1.0f32);
            return match face {
                0 => Point3::new(u * lx, v * ly, 0.0),
                1 => Point3::new(u * lx, v * ly, lz),
                2 => Point3::new(u * lx, 0.0, v * lz),
                3 => Point3::new(u * lx, ly, v * lz),
                4 => Point3::new(0.0, u * ly, v * lz),
                _ => Point3::new(lx, u * ly, v * lz),
            };
        }
        pick -= area;
    }
    Point3::new(0.0, 0.0, 0.0)
}

fn sample_box(rng: &mut StdRng, c: Point3, h: Point3) -> Point3 {
    let ax = h.y * h.z;
    let ay = h.x * h.z;
    let az = h.x * h.y;
    let total = ax + ay + az;
    let pick = rng.gen_range(0.0..total);
    let sign: f32 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    let (dx, dy, dz) = if pick < ax {
        (sign * h.x, rng.gen_range(-h.y..h.y), rng.gen_range(-h.z..h.z))
    } else if pick < ax + ay {
        (rng.gen_range(-h.x..h.x), sign * h.y, rng.gen_range(-h.z..h.z))
    } else {
        (rng.gen_range(-h.x..h.x), rng.gen_range(-h.y..h.y), sign * h.z)
    };
    c.add(Point3::new(dx, dy, dz))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn room_extent_is_room_sized() {
        let mut rng = StdRng::seed_from_u64(11);
        let room = generate_room(&mut rng, 4096);
        let (min, max) = room.bounds().unwrap();
        let ext = max.sub(min);
        assert!(ext.x > 3.0 && ext.x < 11.0);
        assert!(ext.z > 2.0 && ext.z < 4.0);
    }

    #[test]
    fn room_is_sparse_when_voxelized() {
        let mut rng = StdRng::seed_from_u64(5);
        let room = generate_room(&mut rng, 20_000);
        let (vc, _) = room.voxelize(0.05);
        // Indoor scenes are shell-like: orders of magnitude below a dense
        // volume (paper Fig. 5 reports < 1e-2 at the full-room point
        // count; a 20k sample at 5 cm voxels sits slightly above).
        assert!(vc.density() < 5e-2, "indoor density should be shell-like, got {}", vc.density());
    }
}
