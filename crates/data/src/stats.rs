//! Dataset profiling used by paper Fig. 5 (left): occupancy density of
//! each dataset after voxelization, compared against a dense image.

use crate::Dataset;
use pointacc_geom::PointSet;

/// Density profile of one dataset sample.
#[derive(Clone, Debug, PartialEq)]
pub struct DensityProfile {
    /// Dataset name.
    pub name: String,
    /// Points in the sample.
    pub n_points: usize,
    /// Occupied voxels after quantization.
    pub n_voxels: usize,
    /// Occupied fraction of the bounding volume (Fig. 5's y-axis).
    pub density: f64,
}

/// Profiles a sample at the dataset's native voxel size.
pub fn profile(dataset: Dataset, sample: &PointSet) -> DensityProfile {
    let (vc, _) = sample.voxelize(dataset.voxel_size());
    DensityProfile {
        name: dataset.name().to_string(),
        n_points: sample.len(),
        n_voxels: vc.len(),
        density: vc.density(),
    }
}

/// Density of a dense image input (ImageNet reference line in Fig. 5):
/// 100 % by construction.
pub fn imagenet_density() -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_ordering_matches_fig5() {
        // Objects > indoor > outdoor in density; all far below ImageNet.
        let obj = Dataset::ModelNet40;
        let indoor = Dataset::S3dis;
        let outdoor = Dataset::SemanticKitti;
        let p_obj = profile(obj, &obj.generate(1, 2048));
        let p_in = profile(indoor, &indoor.generate(1, 20_000));
        let p_out = profile(outdoor, &outdoor.generate(1, 40_000));
        assert!(p_obj.density < imagenet_density());
        assert!(p_in.density < p_obj.density * 2.0);
        assert!(
            p_out.density < p_in.density,
            "outdoor {} should be sparser than indoor {}",
            p_out.density,
            p_in.density
        );
        assert!(p_out.density < 1e-2);
    }
}
