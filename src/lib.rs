//! Workspace root crate for the PointAcc reproduction.
//!
//! This crate only re-exports the member crates so that the integration
//! tests in `tests/` and the examples in `examples/` can reach the whole
//! system through one dependency. The real functionality lives in:
//!
//! - [`pointacc`] — the accelerator model (MPU / MMU / MXU, compiler, perf).
//! - [`pointacc_geom`] — point-cloud geometry and the mapping backends
//!   (grid-hash `index::Indexed` production path, `golden` oracle).
//! - [`pointacc_data`] — synthetic dataset generators.
//! - [`pointacc_nn`] — network definitions, reference executor, stats.
//! - [`pointacc_sim`] — DRAM / SRAM / energy / systolic / sorter substrates.
//! - [`pointacc_baselines`] — CPU/GPU/TPU/edge/Mesorasi comparison models.
//! - [`pointacc_bench`] — the parallel `Engine` run harness and the
//!   paper-figure benchmark binaries.
//!
//! Every hardware model implements [`pointacc::Engine`], so whole
//! evaluations are (engine × benchmark × seed) grids driven by
//! [`pointacc_bench::harness`].

pub use pointacc;
pub use pointacc_baselines;
pub use pointacc_bench;
pub use pointacc_data;
pub use pointacc_geom;
pub use pointacc_nn;
pub use pointacc_sim;
